"""E10 — the distributed algorithm A: equivalence and concurrency.

The paper translates the chain M into a local asynchronous algorithm A.
This benchmark (i) measures the TV distance between A's empirical visit
distribution and the exact stationary π on a small system, (ii) checks
alternative schedulers reach the same separated outcome, and (iii)
measures how rarely concurrent rounds actually conflict.
"""

from conftest import full_scale, write_result

from repro.distributed import ConcurrentRunner, DistributedRunner
from repro.distributed.scheduler import make_scheduler
from repro.markov.diagnostics import (
    empirical_distribution,
    empirical_vs_exact_tv,
)
from repro.markov.exact import ExactChainAnalysis
from repro.system.initializers import hexagon_system


def _run():
    steps = 1_000_000 if full_scale() else 200_000

    analysis = ExactChainAnalysis(4, [2, 2], lam=2.0, gamma=3.0)
    exact = {
        s.canonical_key(): float(p)
        for s, p in zip(analysis.states, analysis.pi)
    }
    tv_by_scheduler = {}
    for kind in ("uniform", "poisson", "round-robin"):
        state = analysis.states[0].copy()
        runner = DistributedRunner(
            state,
            lam=2.0,
            gamma=3.0,
            scheduler=make_scheduler(kind, state.n, seed=3),
            seed=51,
        )
        empirical = empirical_distribution(
            runner,
            state_index=lambda state=state: state.canonical_key(),
            steps=steps,
            record_every=4,
        )
        tv_by_scheduler[kind] = empirical_vs_exact_tv(empirical, exact)

    # Concurrency: conflict rate at increasing round sizes.
    conflict_rates = {}
    for round_size in (4, 16, 40):
        system = hexagon_system(80, seed=52)
        runner = ConcurrentRunner(
            system, lam=4.0, gamma=4.0, round_size=round_size, seed=52
        )
        rounds = 30_000 // round_size
        runner.run(rounds)
        total = runner.applied_actions + runner.conflicts_dropped
        conflict_rates[round_size] = (
            runner.conflicts_dropped / total if total else 0.0
        )
        assert system.is_connected() and not system.has_holes()
    return steps, tv_by_scheduler, conflict_rates


def test_distributed_equivalence(benchmark):
    steps, tv_by_scheduler, conflict_rates = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    lines = [f"TV(empirical, exact pi) after {steps} activations:"]
    for kind, tv in tv_by_scheduler.items():
        lines.append(f"  {kind:<12} {tv:.4f}")
    lines.append("conflict drop rate in concurrent rounds (n=80):")
    for round_size, rate in conflict_rates.items():
        lines.append(f"  round size {round_size:>3}: {rate:.4f}")
    write_result("distributed_equivalence", "\n".join(lines))

    # Every scheduler converges to the same stationary behavior.
    assert all(tv < 0.12 for tv in tv_by_scheduler.values()), tv_by_scheduler
    # Conflicts exist but stay a small minority even at high concurrency.
    assert conflict_rates[40] < 0.35
