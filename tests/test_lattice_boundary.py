"""Tests for boundary walks and the perimeter identity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice.boundary import (
    boundary_walk,
    perimeter,
    perimeter_from_edges,
    walk_edges,
)
from repro.lattice.geometry import disk, hexagon, line
from repro.lattice.triangular import are_adjacent, edges_of
from repro.markov.enumerate_configs import enumerate_animals
from repro.system.initializers import random_blob_system


class TestBoundaryWalk:
    def test_single_particle(self):
        assert boundary_walk({(0, 0)}) == [(0, 0)]
        assert perimeter({(0, 0)}) == 0

    def test_two_particles(self):
        assert perimeter({(0, 0), (1, 0)}) == 2

    def test_triangle(self):
        assert perimeter({(0, 0), (1, 0), (0, 1)}) == 3

    def test_hexagon_ring_with_center(self):
        assert perimeter(set(disk((0, 0), 1))) == 6

    def test_line_perimeter(self):
        assert perimeter(set(line(10))) == 18  # 2*(n-1)

    def test_walk_steps_are_adjacent(self):
        walk = boundary_walk(set(hexagon(25)))
        for a, b in walk_edges(walk):
            assert are_adjacent(a, b)

    def test_walk_edges_empty_for_singleton(self):
        assert walk_edges([(0, 0)]) == []

    def test_cut_vertex_traversed_twice(self):
        # Two triangles joined at the origin: the boundary walk passes
        # the cut vertex twice and its length matches the edge identity.
        nodes = {(0, 0), (1, 0), (0, 1), (-1, 0), (0, -1)}
        walk = boundary_walk(nodes)
        assert walk.count((0, 0)) == 2
        assert len(walk) == perimeter_from_edges(
            len(nodes), len(edges_of(nodes))
        )


class TestPerimeterIdentity:
    @given(st.integers(min_value=1, max_value=7))
    @settings(max_examples=7, deadline=None)
    def test_identity_on_all_small_animals(self, n):
        """p = 3n - 3 - e for every connected hole-free configuration."""
        for animal in enumerate_animals(n, hole_free_only=True):
            occupied = set(animal)
            assert perimeter(occupied) == perimeter_from_edges(
                n, len(edges_of(occupied))
            )

    @given(st.integers(min_value=2, max_value=80))
    @settings(max_examples=20, deadline=None)
    def test_identity_on_random_blobs(self, n):
        system = random_blob_system(n, seed=n)
        occupied = set(system.colors)
        assert perimeter(occupied) == perimeter_from_edges(n, system.edge_total)

    def test_identity_fails_with_holes(self):
        # A hexagon ring (hole in the middle): the walk sees only the
        # outer boundary while the edge formula implicitly counts the
        # hole, so they must disagree.
        from repro.lattice.geometry import ring as lattice_ring

        nodes = set(lattice_ring((0, 0), 1))
        e = len(edges_of(nodes))
        assert perimeter(nodes) != perimeter_from_edges(len(nodes), e)

    def test_perimeter_from_edges_invalid_n(self):
        with pytest.raises(ValueError):
            perimeter_from_edges(0, 0)
