"""Tests for time-series estimators."""

import math
import random

import numpy as np
import pytest

from repro.analysis.estimators import (
    autocorrelation_time,
    batch_means_error,
    effective_sample_size,
    running_mean,
    time_to_threshold,
)


class TestAutocorrelation:
    def test_iid_series_tau_near_one(self):
        rng = random.Random(0)
        series = [rng.random() for _ in range(5000)]
        assert autocorrelation_time(series) < 1.5

    def test_correlated_series_tau_large(self):
        rng = random.Random(0)
        value = 0.0
        series = []
        for _ in range(5000):
            value = 0.95 * value + rng.gauss(0, 1)
            series.append(value)
        tau = autocorrelation_time(series)
        # AR(1) with ρ=0.95 has τ = (1+ρ)/(1-ρ) = 39.
        assert tau > 10

    def test_constant_series(self):
        assert autocorrelation_time([3.0] * 100) == 1.0

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            autocorrelation_time([1.0, 2.0])

    def test_effective_sample_size(self):
        rng = random.Random(1)
        series = [rng.random() for _ in range(1000)]
        ess = effective_sample_size(series)
        assert 500 < ess <= 1000


class TestBatchMeans:
    def test_mean_recovered(self):
        rng = random.Random(2)
        series = [5.0 + rng.gauss(0, 1) for _ in range(2000)]
        mean, error = batch_means_error(series)
        assert abs(mean - 5.0) < 0.2
        assert 0 < error < 0.2

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            batch_means_error([1.0] * 100, num_batches=1)
        with pytest.raises(ValueError):
            batch_means_error([1.0] * 10, num_batches=20)


class TestTimeToThreshold:
    def test_simple_crossing(self):
        times = [0, 10, 20, 30]
        values = [5.0, 4.0, 2.0, 1.0]
        assert time_to_threshold(times, values, 2.5, "below") == 20

    def test_patience_skips_blips(self):
        times = [0, 10, 20, 30, 40]
        values = [5.0, 2.0, 5.0, 2.0, 2.0]
        assert time_to_threshold(times, values, 2.5, "below", patience=2) == 30

    def test_above_direction(self):
        assert time_to_threshold([0, 1, 2], [0.1, 0.6, 0.9], 0.5, "above") == 1

    def test_never_crossed(self):
        assert time_to_threshold([0, 1], [5.0, 5.0], 1.0, "below") is None

    def test_validates(self):
        with pytest.raises(ValueError):
            time_to_threshold([0], [1.0, 2.0], 1.0)
        with pytest.raises(ValueError):
            time_to_threshold([0], [1.0], 1.0, direction="sideways")
        with pytest.raises(ValueError):
            time_to_threshold([0], [1.0], 1.0, patience=0)


class TestRunningMean:
    def test_window_one_is_identity(self):
        data = [1.0, 2.0, 3.0]
        assert np.allclose(running_mean(data, 1), data)

    def test_smooths_noise(self):
        rng = random.Random(3)
        data = [math.sin(i / 50) + rng.gauss(0, 0.3) for i in range(500)]
        smoothed = running_mean(data, 51)
        assert np.var(np.diff(smoothed)) < np.var(np.diff(data))

    def test_validates_window(self):
        with pytest.raises(ValueError):
            running_mean([1.0], 0)
