"""Tests for hole detection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice.geometry import disk, hexagon, line, ring
from repro.lattice.holes import (
    fill_holes,
    find_holes,
    has_holes,
    hole_boundary_lengths,
)


class TestFindHoles:
    def test_solid_shapes_have_no_holes(self):
        assert not has_holes(set(hexagon(30)))
        assert not has_holes(set(line(10)))
        assert not has_holes({(0, 0)})

    def test_hexagon_ring_has_one_hole(self):
        holes = find_holes(set(ring((0, 0), 1)))
        assert len(holes) == 1
        assert holes[0] == {(0, 0)}

    def test_radius2_ring_hole_is_disk_of_radius1(self):
        holes = find_holes(set(ring((0, 0), 2)))
        assert len(holes) == 1
        assert holes[0] == set(disk((0, 0), 1))

    def test_two_separate_holes(self):
        nodes = set(ring((0, 0), 1)) | set(ring((10, 0), 1))
        # Bridge the two rings so the configuration is one component.
        nodes |= {(x, 0) for x in range(2, 9)}
        holes = find_holes(nodes)
        assert len(holes) == 2
        assert {(0, 0)} in holes and {(10, 0)} in holes

    def test_empty_set(self):
        assert find_holes(set()) == []

    def test_notch_is_not_a_hole(self):
        # A C-shape: the cavity opens to the exterior, so no hole.
        nodes = set(ring((0, 0), 1))
        nodes.discard((1, 0))
        assert not has_holes(nodes)


class TestFillHoles:
    def test_fill_restores_disk(self):
        filled = fill_holes(set(ring((0, 0), 1)))
        assert filled == set(disk((0, 0), 1))

    def test_fill_no_holes_is_identity(self):
        nodes = set(hexagon(12))
        assert fill_holes(nodes) == nodes

    @given(st.integers(min_value=1, max_value=4))
    @settings(deadline=None)
    def test_filled_never_has_holes(self, r):
        assert not has_holes(fill_holes(set(ring((0, 0), r))))


class TestHoleBoundaries:
    def test_single_hole_rim_edges(self):
        lengths = hole_boundary_lengths(set(ring((0, 0), 1)))
        assert list(lengths.values()) == [6]

    def test_no_holes_empty_mapping(self):
        assert hole_boundary_lengths(set(hexagon(9))) == {}
