"""Tests for the PODC '16 compression baseline."""

import math

import pytest

from repro.core.compression_chain import (
    COMPRESSION_THRESHOLD,
    EXPANSION_THRESHOLD,
    CompressionChain,
    compression_ratio,
    is_compressed,
    proven_compression_lambda,
)
from repro.core.separation_chain import SeparationChain
from repro.system.initializers import hexagon_system, line_system


class TestConstruction:
    def test_rejects_heterogeneous_systems(self):
        system = hexagon_system(10, seed=0)  # two colors
        with pytest.raises(ValueError):
            CompressionChain(system, lam=4.0)

    def test_from_line_and_hexagon(self):
        assert CompressionChain.from_line(12, lam=4.0).system.n == 12
        assert CompressionChain.from_hexagon(12, lam=4.0).system.n == 12

    def test_gamma_forced_to_one(self):
        chain = CompressionChain.from_hexagon(10, lam=4.0)
        assert chain.gamma == 1.0
        assert chain.swaps is False


class TestThresholds:
    def test_constants(self):
        assert math.isclose(COMPRESSION_THRESHOLD, 2 + math.sqrt(2))
        assert EXPANSION_THRESHOLD == 2.17
        assert proven_compression_lambda(0.5) == COMPRESSION_THRESHOLD + 0.5


class TestCompressionBehavior:
    def test_line_compresses_at_large_lambda(self):
        chain = CompressionChain.from_line(30, lam=5.0, seed=1)
        start = chain.system.perimeter()
        chain.run(80_000)
        end = chain.system.perimeter()
        assert end < 0.6 * start
        assert is_compressed(chain.system, alpha=2.5)

    def test_hexagon_expands_at_small_lambda(self):
        chain = CompressionChain.from_hexagon(30, lam=1.0, seed=1)
        chain.run(80_000)
        # λ = 1 is unbiased: the perimeter drifts well above minimal.
        assert compression_ratio(chain.system) > 1.5

    def test_compression_ratio_of_hexagon_is_small(self):
        chain = CompressionChain.from_hexagon(37, lam=4.0)
        assert compression_ratio(chain.system) < 1.2

    def test_is_compressed_validates_alpha(self):
        chain = CompressionChain.from_hexagon(10, lam=4.0)
        with pytest.raises(ValueError):
            is_compressed(chain.system, alpha=0.5)


class TestEquivalenceWithSeparationChain:
    def test_gamma_one_separation_chain_matches_compression_chain(self):
        """With γ=1 and identical seeds, the two chains take identical
        trajectories on a monochromatic system."""
        a = hexagon_system(20, counts=[20, 0], seed=3, shuffle=False)
        b = a.copy()
        comp = CompressionChain(a, lam=3.0, seed=99)
        sep = SeparationChain(b, lam=3.0, gamma=1.0, swaps=False, seed=99)
        comp.run(10_000)
        sep.run(10_000)
        assert sorted(a.colors) == sorted(b.colors)
