"""Tests for the executable theorem bounds."""

import math

import pytest

from repro.analysis.bounds import (
    GAMMA_THRESHOLD_LARGE,
    GAMMA_WINDOW_SMALL,
    PEIERLS_CONSTANT,
    SEPARATION_LAMBDA_GAMMA_THRESHOLD,
    predicted_regime,
    theorem13_condition,
    theorem13_min_alpha,
    theorem14_condition,
    theorem14_min_gamma,
    theorem15_condition,
    theorem15_min_alpha,
    theorem16_condition,
)


class TestConstants:
    def test_peierls_constant(self):
        assert math.isclose(PEIERLS_CONSTANT, 2 * (2 + math.sqrt(2)))

    def test_gamma_threshold(self):
        assert math.isclose(GAMMA_THRESHOLD_LARGE, 4 ** 1.25)
        assert 5.65 < GAMMA_THRESHOLD_LARGE < 5.66

    def test_separation_threshold_value(self):
        """The paper quotes 2(2+√2)e^{0.0003} ≈ 6.83."""
        assert 6.82 < SEPARATION_LAMBDA_GAMMA_THRESHOLD < 6.84

    def test_gamma_window(self):
        low, high = GAMMA_WINDOW_SMALL
        assert math.isclose(low * high, 1.0)
        assert low < 1.0 < high


class TestTheorem13:
    def test_paper_corollary_region(self):
        """λ > 1, γ > 4^{5/4}, λγ > 6.83 admits some α."""
        assert theorem13_min_alpha(1.3, 6.0) is not None

    def test_fails_below_gamma_threshold(self):
        assert not theorem13_condition(2.0, 10.0, 5.0)
        assert theorem13_min_alpha(10.0, 5.0) is None

    def test_fails_below_lambda_gamma_threshold(self):
        assert theorem13_min_alpha(1.05, 5.7) is None  # λγ ≈ 5.99 < 6.83

    def test_condition_monotone_in_alpha(self):
        lam, gamma = 2.0, 8.0
        alpha_min = theorem13_min_alpha(lam, gamma)
        assert alpha_min is not None
        assert theorem13_condition(alpha_min * 1.01, lam, gamma)
        assert not theorem13_condition(alpha_min * 0.9, lam, gamma)

    def test_stronger_bias_allows_smaller_alpha(self):
        weak = theorem13_min_alpha(1.3, 6.0)
        strong = theorem13_min_alpha(4.0, 10.0)
        assert strong < weak

    def test_rejects_invalid_inputs(self):
        assert not theorem13_condition(0.5, 4.0, 8.0)
        assert not theorem13_condition(2.0, -1.0, 8.0)


class TestTheorem14:
    def test_requires_beta_above_geometry_floor(self):
        # β must exceed 2√3·α ≈ 3.46α.
        assert theorem14_min_gamma(1.0, 3.0, 0.1) is None
        assert theorem14_min_gamma(1.0, 4.0, 0.1) is not None

    def test_condition_at_min_gamma_boundary(self):
        alpha, beta, delta = 1.1, 8.0, 0.1
        gamma_min = theorem14_min_gamma(alpha, beta, delta)
        assert theorem14_condition(alpha, beta, delta, gamma_min * 1.01)
        assert not theorem14_condition(alpha, beta, delta, gamma_min * 0.99)

    def test_looser_beta_needs_smaller_gamma(self):
        tight = theorem14_min_gamma(1.1, 5.0, 0.1)
        loose = theorem14_min_gamma(1.1, 50.0, 0.1)
        assert loose < tight

    def test_delta_bounds(self):
        assert theorem14_min_gamma(1.0, 8.0, 0.6) is None
        assert not theorem14_condition(1.0, 8.0, 0.0, 10.0)


class TestTheorem15:
    def test_window_and_threshold(self):
        # λ(γ+1) = 8 > 6.83 with γ = 1: provable for some α.
        assert theorem15_min_alpha(4.0, 1.0) is not None

    def test_gamma_outside_window_fails(self):
        assert not theorem15_condition(2.0, 4.0, 1.5)
        assert theorem15_min_alpha(4.0, 1.5) is None

    def test_lambda_too_small_fails(self):
        # λ(γ+1) = 2·2 = 4 < 6.83.
        assert theorem15_min_alpha(2.0, 1.0) is None

    def test_condition_monotone_in_alpha(self):
        alpha_min = theorem15_min_alpha(5.0, 1.0)
        assert theorem15_condition(alpha_min * 1.01, 5.0, 1.0)
        assert not theorem15_condition(alpha_min * 0.9, 5.0, 1.0)


class TestTheorem16:
    def test_gamma_one_always_qualifies(self):
        assert theorem16_condition(0.1, 1.0)

    def test_window_widens_for_smaller_delta(self):
        """Smaller δ (stricter separation notion) admits a wider γ window
        in which separation provably fails."""
        assert theorem16_condition(0.01, 1.02)
        assert not theorem16_condition(0.2, 1.02)

    def test_gamma_far_from_one_fails(self):
        assert not theorem16_condition(0.1, 2.0)
        assert not theorem16_condition(0.1, 0.5)

    def test_delta_must_be_below_quarter(self):
        assert not theorem16_condition(0.3, 1.0)


class TestPredictedRegime:
    def test_proven_separation_region(self):
        assert predicted_regime(1.3, 6.0) == "separates"
        assert predicted_regime(4.0, 8.0) == "separates"

    def test_proven_integration_region(self):
        assert predicted_regime(7.0, 1.0) == "integrates"
        assert predicted_regime(10.0, 81 / 80) == "integrates"

    def test_unproven_gap(self):
        # γ between the two windows: nothing is proven (e.g. Figure 2's
        # own λ = γ = 4 setting!).
        assert predicted_regime(4.0, 4.0) == "unproven"
        assert predicted_regime(2.0, 1.0) == "unproven"
        assert predicted_regime(0.5, 8.0) == "unproven"
