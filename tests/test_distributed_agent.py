"""Tests for the local particle agent — especially its exact agreement
with the optimized centralized move evaluation."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.separation_chain import evaluate_move, evaluate_swap
from repro.distributed.agent import (
    MoveAction,
    NoAction,
    ParticleAgent,
    SwapAction,
)
from repro.distributed.local_view import LocalView
from repro.lattice.triangular import NEIGHBOR_OFFSETS
from repro.system.initializers import random_blob_system


class _FixedQ(random.Random):
    """RNG whose uniform draws return a fixed q (for acceptance probing)."""

    def __init__(self, q):
        super().__init__(0)
        self._q = q

    def random(self):
        return self._q


class TestAgentConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ParticleAgent(lam=0.0, gamma=1.0)
        with pytest.raises(ValueError):
            ParticleAgent(lam=1.0, gamma=-1.0)


class TestAgentMatchesCentralizedChain:
    """For every (particle, direction) in random systems, the agent's
    accept/reject boundary equals the centralized acceptance probability."""

    @given(st.integers(0, 60))
    @settings(max_examples=15, deadline=None)
    def test_move_decisions_match(self, seed):
        lam, gamma = 2.0, 3.0
        agent = ParticleAgent(lam=lam, gamma=gamma)
        system = random_blob_system(15, seed=seed)
        colors = system.colors
        for src in sorted(colors):
            for dx, dy in NEIGHBOR_OFFSETS:
                dst = (src[0] + dx, src[1] + dy)
                if dst in colors:
                    continue
                prob, _, _ = evaluate_move(colors, src, dst, lam, gamma)
                view = LocalView(colors, src, dst)
                # Draw q just below and just above the centralized
                # probability: the agent must accept/reject accordingly.
                if prob > 0:
                    action = agent.decide(view, _FixedQ(prob * 0.999))
                    assert isinstance(action, MoveAction), (src, dst, prob)
                if prob < 1:
                    action = agent.decide(view, _FixedQ(min(prob * 1.001, 0.999999)))
                    if prob == 0:
                        assert isinstance(action, NoAction)
                    else:
                        assert isinstance(action, (NoAction, MoveAction))
                        # strictly above the boundary must reject
                        action2 = agent.decide(view, _FixedQ(prob + (1 - prob) / 2))
                        assert isinstance(action2, NoAction)

    @given(st.integers(0, 60))
    @settings(max_examples=15, deadline=None)
    def test_swap_decisions_match(self, seed):
        gamma = 2.5
        agent = ParticleAgent(lam=2.0, gamma=gamma)
        system = random_blob_system(15, seed=seed)
        colors = system.colors
        for src in sorted(colors):
            for dx, dy in NEIGHBOR_OFFSETS:
                dst = (src[0] + dx, src[1] + dy)
                if colors.get(dst) is None or colors[dst] == colors[src]:
                    continue
                prob, _ = evaluate_swap(colors, src, dst, gamma)
                view = LocalView(colors, src, dst)
                action = agent.decide(view, _FixedQ(prob * 0.999))
                assert isinstance(action, SwapAction)
                if prob < 1:
                    above = prob + (1 - prob) / 2
                    action2 = agent.decide(view, _FixedQ(above))
                    assert isinstance(action2, NoAction)


class TestAgentBehaviors:
    def test_same_color_swap_is_noop(self):
        from repro.system.configuration import ParticleSystem

        system = ParticleSystem.from_nodes([(0, 0), (1, 0)], [0, 0])
        agent = ParticleAgent(lam=2, gamma=2)
        view = LocalView(system.colors, (0, 0), (1, 0))
        action = agent.decide(view, random.Random(0))
        assert isinstance(action, NoAction)
        assert "same color" in action.reason

    def test_swaps_disabled(self):
        from repro.system.configuration import ParticleSystem

        system = ParticleSystem.from_nodes([(0, 0), (1, 0)], [0, 1])
        agent = ParticleAgent(lam=2, gamma=2, swaps=False)
        view = LocalView(system.colors, (0, 0), (1, 0))
        action = agent.decide(view, random.Random(0))
        assert isinstance(action, NoAction)
        assert "disabled" in action.reason

    def test_five_neighbor_rule(self):
        """A particle with five neighbors may not expand (condition i)."""
        from repro.lattice.triangular import neighbors
        from repro.system.configuration import ParticleSystem

        center = (0, 0)
        nbrs = neighbors(center)
        occupied = [center] + nbrs[:5]
        system = ParticleSystem.from_nodes(occupied, [0] * 6)
        empty = nbrs[5]
        agent = ParticleAgent(lam=100.0, gamma=1.0)
        view = LocalView(system.colors, center, empty)
        action = agent.decide(view, _FixedQ(1e-9))
        assert isinstance(action, NoAction)
        assert "five neighbors" in action.reason
