"""Tests for the illustrative figures (Figures 1 and 4)."""

from repro.experiments.figure1 import (
    figure1_lattice_svg,
    figure1_particles_svg,
    figure4_hexagon_construction,
    write_illustrations,
)


class TestFigure1:
    def test_lattice_svg_structure(self):
        text = figure1_lattice_svg(radius=2)
        assert text.startswith("<svg")
        assert text.count("<circle") == 19  # radius-2 disk

    def test_particles_svg_has_expanded_bar(self):
        text = figure1_particles_svg()
        # One thick connector line for the expanded particle.
        thick = [line for line in text.splitlines() if 'stroke-width="3' in line]
        assert thick

    def test_write_to_file(self, tmp_path):
        target = tmp_path / "lattice.svg"
        figure1_lattice_svg(radius=1, path=target)
        assert target.read_text().startswith("<svg")


class TestFigure4:
    def test_paper_example_values(self):
        """The paper's Figure 4: side-3 hexagon (37 particles, p = 18)
        plus 6 extras with perimeter 20 < 2√3·√43."""
        base, extended, ascii_a, ascii_b = figure4_hexagon_construction(
            side=3, extra=6
        )
        assert base.n == 37
        assert base.perimeter() == 18
        assert extended.n == 43
        assert extended.perimeter() <= 20
        assert 2 * (3 * 43) ** 0.5 > extended.perimeter()
        assert ascii_a.count("o") == 37
        assert ascii_b.count("o") == 43

    def test_write_illustrations(self, tmp_path):
        written = write_illustrations(tmp_path)
        assert len(written) == 4
        for path in written:
            assert path.exists()
            assert path.read_text().startswith("<svg")
