"""Tests for the consolidated run-report generator (``repro report``).

The reports are generated from *real* sweep runs — including one with
quarantined cells — and checked for the conventions the subsystem
promises: ``n/a`` (never ``nan``) for missing values, self-contained
HTML, and tolerant artifact discovery.
"""

import json
from html.parser import HTMLParser

import pytest

from repro.analysis.compression_metric import alpha_of
from repro.experiments.resilience import FailurePolicy, RetryPolicy
from repro.experiments.sweep import grid, run_sweep
from repro.obs import Instrumentation, JsonLogger, MetricsRegistry
from repro.obs.metrics import METRICS_FORMAT_VERSION
from repro.obs.report import (
    RunReport,
    collect_run,
    fmt,
    render_html,
    render_markdown,
    sparkline,
    sparkline_svg,
    write_report,
)

METRICS = {
    "alpha": alpha_of,
    "hetero_density": lambda s: (
        s.hetero_total / s.edge_total if s.edge_total else 0.0
    ),
}


def _run_sweep_dir(tmp_path, fault_spec=None, failure=None, retry=None):
    """A real instrumented sweep leaving artifacts under tmp_path."""
    metrics = MetricsRegistry()
    logger = JsonLogger.open(tmp_path / "run.jsonl")
    obs = Instrumentation(logger=logger, metrics=metrics, diag_every=500)
    run_sweep(
        grid([2.0], [1.0, 4.0]),
        METRICS,
        n=30,
        iterations=5_000,
        seed=9,
        replicas=2,
        obs=obs,
        checkpoint_dir=tmp_path / "ckpt",
        fault_spec=fault_spec,
        failure=failure,
        retry=retry,
    )
    logger.close()
    metrics.save(tmp_path / "metrics.json")
    return tmp_path


@pytest.fixture(scope="module")
def sweep_dir(tmp_path_factory):
    return _run_sweep_dir(tmp_path_factory.mktemp("run"))


@pytest.fixture(scope="module")
def quarantined_dir(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("chaos")
    return _run_sweep_dir(
        tmp_path,
        fault_spec={
            "mode": "crash",
            "match": "gamma=1",
            "times": 99,
            "dir": str(tmp_path / "ledger"),
        },
        failure=FailurePolicy(mode="quarantine"),
        retry=RetryPolicy(max_retries=1, backoff_base=0.0),
    )


class TestFmt:
    def test_missing_values_are_na_never_nan(self):
        assert fmt(None) == "n/a"
        assert fmt(float("nan")) == "n/a"
        assert fmt(float("inf")) == "n/a"

    def test_numbers(self):
        assert fmt(8.0) == "8"
        assert fmt(1234567) == "1,234,567"
        assert fmt(0.456789) == "0.46"
        assert fmt(True) == "yes"
        assert fmt("x") == "x"


class TestSparklines:
    def test_unicode_sparkline(self):
        line = sparkline([1, 2, 3, 4, 3, 2, 1])
        assert len(line) == 7
        assert line[0] == "▁" and line[3] == "█"

    def test_handles_empty_flat_and_nan(self):
        assert sparkline([]) == ""
        assert sparkline([None, float("nan")]) == ""
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_downsamples_long_series(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40

    def test_svg_is_inline_polyline(self):
        svg = sparkline_svg([1.0, 3.0, 2.0])
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "polyline" in svg and "http://www.w3.org/2000/svg" in svg
        assert sparkline_svg([]) == ""


class TestCollectRun:
    def test_discovers_all_artifact_kinds(self, sweep_dir):
        report = collect_run(sweep_dir)
        assert report.metrics_files == ["metrics.json"]
        assert report.event_files == ["run.jsonl"]
        assert len(report.checkpoints) == 4  # 2 cells x 2 replicas
        assert report.counters()["engine.cells_completed"] == 4
        assert len(report.convergence_rows()) == 4
        assert len(report.throughput_rows()) == 4
        assert any(
            name == "sweep.done" for name, _ in report.event_counts()
        )

    def test_skips_foreign_json_without_crashing(self, tmp_path):
        (tmp_path / "trace.json").write_text(
            json.dumps({"traceEvents": [], "displayTimeUnit": "ms"})
        )
        (tmp_path / "broken.json").write_text("{not json")
        (tmp_path / "bad.jsonl").write_bytes(b"\xff\xfe not utf8 jsonl")
        report = collect_run(tmp_path)
        assert "trace.json" in report.skipped_files
        assert "broken.json" in report.skipped_files
        assert report.metrics_files == []

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_run(tmp_path / "nope")

    def test_quarantined_run_collects_failures(self, quarantined_dir):
        report = collect_run(quarantined_dir)
        assert len(report.failures) == 2  # gamma=1 cell, both replicas
        assert all(
            "injected crash" in f["error"] for f in report.failures
        )


class _TagBalance(HTMLParser):
    VOID = {"meta", "br", "hr", "img", "polyline", "input", "link"}

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack, self.errors = [], []

    def handle_starttag(self, tag, attrs):
        if tag not in self.VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if tag in self.VOID:
            return
        if not self.stack or self.stack[-1] != tag:
            self.errors.append(tag)
        else:
            self.stack.pop()


class TestRendering:
    def test_markdown_from_real_sweep(self, sweep_dir):
        text = render_markdown(collect_run(sweep_dir, title="smoke"))
        assert text.startswith("# Run report: smoke")
        for section in (
            "## Summary", "## Convergence", "## Throughput",
            "## Failures", "## Events",
        ):
            assert section in text
        assert "nan" not in text
        assert "No quarantined cells." in text

    def test_html_is_valid_and_self_contained(self, sweep_dir):
        html = render_html(collect_run(sweep_dir))
        parser = _TagBalance()
        parser.feed(html)
        assert parser.errors == [] and parser.stack == []
        # Self-contained: inline CSS + SVG, no external fetches.
        assert "<style>" in html and "<svg" in html
        assert "src=" not in html and "href=" not in html
        assert "<script" not in html
        assert "nan" not in html.replace("xmlns", "")

    def test_quarantined_run_renders_na_not_nan(self, quarantined_dir):
        report = collect_run(quarantined_dir)
        md = render_markdown(report)
        html = render_html(report)
        assert "n/a" in md
        assert "nan" not in md and "nan" not in html.replace("xmlns", "")
        assert "injected crash" in md and "injected crash" in html
        # The failure table carries the FailedCell conventions.
        assert "| exception | 2 |" in md

    def test_empty_run_dir_renders(self, tmp_path):
        report = collect_run(tmp_path)
        md = render_markdown(report)
        assert "No per-cell throughput series recorded." in md
        assert "No event logs found." in md
        assert "--diag-every" in md  # hint when diagnostics are absent
        parser = _TagBalance()
        parser.feed(render_html(report))
        assert parser.errors == [] and parser.stack == []

    def test_html_escapes_artifact_content(self, tmp_path):
        logger = JsonLogger.open(tmp_path / "run.jsonl")
        logger.warning("<script>alert(1)</script>", message="<img>")
        logger.close()
        html = render_html(collect_run(tmp_path))
        assert "<script>alert" not in html
        assert "&lt;script&gt;" in html


class TestWriteReport:
    def test_writes_both_files(self, sweep_dir, tmp_path):
        md_path, html_path = write_report(sweep_dir, out_dir=tmp_path)
        assert md_path.name == "report.md" and md_path.exists()
        assert html_path.name == "report.html" and html_path.exists()
        assert md_path.read_text(encoding="utf-8").startswith("# Run report")

    def test_report_files_do_not_recurse(self, tmp_path):
        # Writing into the run dir must not poison a later re-collect.
        _run_sweep_dir(tmp_path)
        write_report(tmp_path)
        report = collect_run(tmp_path)
        assert "report.html" not in report.metrics_files
        assert "report.md" not in report.event_files


class TestConvergenceRows:
    def test_rows_sorted_worst_first(self):
        report = RunReport(run_dir=".", title="t")
        report.metrics.series("diag.cells").append(
            {"cell": "good", "ess": 500.0, "ess_min": 100.0}
        )
        report.metrics.series("diag.cells").append(
            {"cell": "bad", "ess": 3.0, "ess_min": 100.0}
        )
        report.metrics.series("diag.cells").append(
            {"cell": "unknown", "ess": None, "ess_min": 100.0}
        )
        rows = report.convergence_rows()
        assert [r["cell"] for r in rows] == ["unknown", "bad", "good"]


def test_metrics_version_guard(tmp_path):
    """Future-versioned snapshots are skipped, not misread."""
    (tmp_path / "metrics.json").write_text(
        json.dumps({"version": METRICS_FORMAT_VERSION + 1, "counters": {}})
    )
    report = collect_run(tmp_path)
    assert report.metrics_files == []
    assert "metrics.json" in report.skipped_files
