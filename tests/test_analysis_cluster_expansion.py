"""Tests for the abstract polymer model and cluster expansion."""

import math

import pytest

from repro.analysis.cluster_expansion import (
    PolymerModel,
    find_kp_constant,
    kotecky_preiss_margin,
    log_partition_function,
    partition_function,
    psi_per_edge,
    truncated_cluster_expansion,
    ursell_factor,
    volume_surface_split,
)
from repro.analysis.polymers import (
    all_polymers_in_region,
    enumerate_loops_through_edge,
    loop_closure_size,
    triangle_edges,
)
from repro.lattice.geometry import disk


def hard_core_segments(length, weight):
    """Polymer model: unit segments on a path, incompatible if adjacent.

    Its partition function is the independence polynomial of a path
    graph, with the closed-form Fibonacci-like recurrence
    Z_k = Z_{k-1} + w * Z_{k-2}.
    """
    polymers = list(range(length))
    return PolymerModel(
        polymers=polymers,
        weight=lambda p: weight,
        compatible=lambda a, b: abs(a - b) > 1,
    )


def path_independence_polynomial(length, weight):
    z_prev, z = 1.0, 1.0 + weight  # Z_0 = 1, Z_1 = 1 + w
    if length == 0:
        return 1.0
    for _ in range(length - 1):
        z_prev, z = z, z + weight * z_prev
    return z


class TestPartitionFunction:
    @pytest.mark.parametrize("length,weight", [(1, 0.5), (4, 0.3), (7, 1.2)])
    def test_matches_path_independence_polynomial(self, length, weight):
        model = hard_core_segments(length, weight)
        assert math.isclose(
            partition_function(model),
            path_independence_polynomial(length, weight),
        )

    def test_empty_model(self):
        model = PolymerModel([], lambda p: 1.0, lambda a, b: True)
        assert partition_function(model) == 1.0

    def test_log_partition_rejects_nonpositive(self):
        model = PolymerModel([0], lambda p: -2.0, lambda a, b: True)
        with pytest.raises(ValueError):
            log_partition_function(model)


class TestUrsellFactors:
    def test_singleton_cluster(self):
        model = hard_core_segments(2, 1.0)
        incompatible = model.incompatibility_matrix()
        assert ursell_factor((0,), incompatible) == 1.0

    def test_incompatible_pair(self):
        model = hard_core_segments(2, 1.0)
        incompatible = model.incompatibility_matrix()
        # Two distinct incompatible polymers: U = -1 (one edge), /1 = -1.
        assert ursell_factor((0, 1), incompatible) == -1.0

    def test_repeated_polymer(self):
        model = hard_core_segments(1, 1.0)
        incompatible = model.incompatibility_matrix()
        # Same polymer twice: incompatible with itself, U = -1, /2! = -0.5.
        assert ursell_factor((0, 0), incompatible) == -0.5

    def test_compatible_pair_is_not_a_cluster(self):
        model = hard_core_segments(3, 1.0)
        incompatible = model.incompatibility_matrix()
        assert ursell_factor((0, 2), incompatible) == 0.0


class TestTruncatedExpansion:
    def test_converges_to_exact_small_weights(self):
        model = hard_core_segments(6, 0.05)
        exact = log_partition_function(model)
        errors = [
            abs(truncated_cluster_expansion(model, m) - exact)
            for m in (1, 2, 3, 4)
        ]
        assert errors[-1] < 1e-4
        assert errors[0] > 100 * errors[-1]

    def test_loop_model_convergence(self):
        gamma = 6.0
        region = triangle_edges(set(disk((0, 0), 1)))
        polymers = all_polymers_in_region(region, 6, kind="loop")
        model = PolymerModel(
            polymers,
            weight=lambda p: gamma ** (-len(p)),
            compatible=lambda a, b: a.isdisjoint(b),
        )
        exact = log_partition_function(model)
        approx = truncated_cluster_expansion(model, 3)
        assert abs(approx - exact) < 1e-4

    def test_validates_cluster_size(self):
        model = hard_core_segments(2, 0.1)
        with pytest.raises(ValueError):
            truncated_cluster_expansion(model, 0)


class TestKoteckyPreiss:
    def test_margin_positive_for_tiny_weights(self):
        loops = enumerate_loops_through_edge(8)
        margin = kotecky_preiss_margin(
            loops, lambda p: 20.0 ** (-len(p)), loop_closure_size, c=0.01
        )
        assert margin > 0

    def test_margin_negative_for_heavy_weights(self):
        loops = enumerate_loops_through_edge(8)
        margin = kotecky_preiss_margin(
            loops, lambda p: 2.0 ** (-len(p)), loop_closure_size, c=0.01
        )
        assert margin < 0

    def test_find_kp_constant(self):
        loops = enumerate_loops_through_edge(8)
        c = find_kp_constant(
            loops, lambda p: 8.0 ** (-len(p)), loop_closure_size
        )
        assert c is not None
        assert kotecky_preiss_margin(
            loops, lambda p: 8.0 ** (-len(p)), loop_closure_size, c
        ) >= 0

    def test_find_kp_constant_none_when_impossible(self):
        loops = enumerate_loops_through_edge(8)
        c = find_kp_constant(
            loops, lambda p: 1.5 ** (-len(p)), loop_closure_size, c_max=0.5
        )
        assert c is None

    def test_margin_validates_c(self):
        with pytest.raises(ValueError):
            kotecky_preiss_margin([], lambda p: 0.0, lambda p: 0, c=0.0)


class TestVolumeSurfaceSplit:
    def test_theorem11_sandwich_numerically(self):
        """Brute-force ln Ξ_Λ lies within ψ|Λ| ± c|∂Λ| on concrete
        regions, with ψ estimated from the per-edge cluster expansion."""
        gamma = 6.0

        def weight(p):
            return gamma ** (-len(p))

        loops_through = enumerate_loops_through_edge(8)
        c = find_kp_constant(loops_through, weight, loop_closure_size)
        assert c is not None

        # ψ from clusters around the reference edge (truncated).
        nearby = all_polymers_in_region(
            triangle_edges(set(disk((0, 0), 2))), 6, kind="loop"
        )
        psi_model = PolymerModel(
            nearby, weight, lambda a, b: a.isdisjoint(b)
        )
        from repro.analysis.polymers import REFERENCE_EDGE

        psi = psi_per_edge(
            psi_model, element_of=lambda p: p,
            reference_element=REFERENCE_EDGE, max_cluster_size=3,
        )
        assert abs(psi) <= c

        for radius in (1, 2):
            region = triangle_edges(set(disk((0, 0), radius)))
            polymers = all_polymers_in_region(region, 6, kind="loop")
            model = PolymerModel(polymers, weight, lambda a, b: a.isdisjoint(b))
            log_xi = log_partition_function(model)
            boundary = _region_boundary_size(region)
            lower, upper, holds = volume_surface_split(
                log_xi, psi, volume=len(region), boundary=boundary, c=c
            )
            assert holds, (radius, lower, log_xi, upper)

    def test_split_reports_bounds(self):
        lower, upper, holds = volume_surface_split(
            log_xi=0.0, psi=0.0, volume=10, boundary=5, c=0.1
        )
        assert lower == -0.5 and upper == 0.5 and holds


def _region_boundary_size(region_edges):
    """Edges of the region touching a vertex with incident edges outside."""
    from repro.lattice.triangular import edge_key, neighbors

    vertices = set()
    for a, b in region_edges:
        vertices.add(a)
        vertices.add(b)
    boundary = 0
    for a, b in region_edges:
        for vertex in (a, b):
            if any(
                edge_key(vertex, nbr) not in region_edges
                for nbr in neighbors(vertex)
            ):
                boundary += 1
                break
    return boundary
