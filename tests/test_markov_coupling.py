"""Tests for coupled-chain convergence diagnostics."""

import pytest

from repro.markov.coupling import (
    convergence_from_extremes,
    coupled_observable_coalescence,
)
from repro.system.initializers import hexagon_system, line_system


class TestCoupling:
    def test_extreme_starts_coalesce_in_perimeter(self):
        result = convergence_from_extremes(
            n=25,
            lam=4.0,
            gamma=4.0,
            observable=lambda s: float(s.perimeter()),
            max_steps=150_000,
            seed=5,
            tolerance=2.0,
        )
        assert result.coalesced
        assert result.steps is not None and result.steps <= 150_000
        # The expanded start's perimeter must have fallen dramatically.
        assert result.trajectory_b[-1] < result.trajectory_b[0]

    def test_trajectories_recorded_even_without_coalescence(self):
        a = hexagon_system(20, seed=1)
        b = line_system(20, seed=1)
        result = coupled_observable_coalescence(
            a,
            b,
            lam=4.0,
            gamma=4.0,
            observable=lambda s: float(s.perimeter()),
            max_steps=2_000,
            check_every=500,
            tolerance=0.0,
            seed=1,
        )
        assert len(result.trajectory_a) == len(result.trajectory_b) == 4

    def test_invariants_hold_for_both_chains(self):
        a = hexagon_system(20, seed=2)
        b = line_system(20, seed=2)
        coupled_observable_coalescence(
            a,
            b,
            lam=3.0,
            gamma=2.0,
            observable=lambda s: float(s.hetero_total),
            max_steps=20_000,
            tolerance=1.0,
            seed=2,
        )
        for system in (a, b):
            system.validate()
            assert system.is_connected()
            assert not system.has_holes()

    def test_validates_arguments(self):
        a = hexagon_system(5, seed=0)
        b = hexagon_system(5, seed=1)
        with pytest.raises(ValueError):
            coupled_observable_coalescence(
                a, b, 2.0, 2.0, lambda s: 0.0, max_steps=0
            )

    def test_identical_starts_coalesce_immediately(self):
        a = hexagon_system(15, seed=3)
        b = a.copy()
        result = coupled_observable_coalescence(
            a,
            b,
            lam=3.0,
            gamma=3.0,
            observable=lambda s: float(s.hetero_total),
            max_steps=10_000,
            check_every=1_000,
            patience=1,
            seed=3,
        )
        assert result.coalesced
        # Shared randomness keeps identical copies in lockstep, so the
        # FIRST checkpoint already agrees.
        assert result.steps == 1_000
        assert a.colors == b.colors