"""Tests for compression metrics (Lemma 2, p_min)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.compression_metric import (
    alpha_of,
    is_alpha_compressed,
    lemma2_upper_bound,
    maximum_perimeter,
    minimum_perimeter,
    normalized_perimeter,
)
from repro.lattice.boundary import perimeter_from_edges
from repro.lattice.triangular import edges_of
from repro.markov.enumerate_configs import enumerate_animals
from repro.system.initializers import hexagon_system, line_system


class TestMinimumPerimeter:
    def test_small_values(self):
        assert [minimum_perimeter(n) for n in range(1, 12)] == [
            0, 2, 3, 4, 5, 6, 6, 7, 8, 8, 9,
        ]

    @given(st.integers(min_value=1, max_value=7))
    @settings(max_examples=7, deadline=None)
    def test_matches_brute_force(self, n):
        """The closed form equals the true minimum over all animals."""
        best = min(
            perimeter_from_edges(n, len(edges_of(animal)))
            for animal in enumerate_animals(n, hole_free_only=True)
        )
        assert minimum_perimeter(n) == best

    def test_hexagonal_numbers_exact(self):
        for ell in range(1, 20):
            n = 3 * ell * ell + 3 * ell + 1
            assert minimum_perimeter(n) == 6 * ell

    @given(st.integers(min_value=1, max_value=100_000))
    @settings(max_examples=100, deadline=None)
    def test_lemma2_bound_holds(self, n):
        assert minimum_perimeter(n) <= lemma2_upper_bound(n)

    @given(st.integers(min_value=2, max_value=100_000))
    @settings(max_examples=50, deadline=None)
    def test_monotone_nondecreasing(self, n):
        assert minimum_perimeter(n) >= minimum_perimeter(n - 1)

    def test_sqrt_order(self):
        """p_min(n) = Θ(√n): sandwiched between √(4√3·n)-3 and 2√3·√n."""
        for n in (10, 100, 1000, 10_000):
            p = minimum_perimeter(n)
            assert p <= 2 * math.sqrt(3 * n)
            assert p >= math.sqrt(n)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            minimum_perimeter(0)


class TestAlphaCompression:
    def test_hexagon_is_nearly_one(self):
        system = hexagon_system(91, seed=0)
        assert alpha_of(system) < 1.1

    def test_line_alpha_is_large(self):
        # Line: p = 2(n-1) = 98 against p_min(50) = 22.
        system = line_system(50, seed=0)
        assert alpha_of(system) > 4.0

    def test_is_alpha_compressed(self):
        system = hexagon_system(37, seed=0)
        assert is_alpha_compressed(system, 1.5)
        assert not is_alpha_compressed(line_system(37, seed=0), 1.5)

    def test_alpha_validates(self):
        with pytest.raises(ValueError):
            is_alpha_compressed(hexagon_system(5, seed=0), 0.9)

    def test_single_particle_alpha(self):
        from repro.system.configuration import ParticleSystem

        lonely = ParticleSystem.from_nodes([(0, 0)], [0])
        assert alpha_of(lonely) == 1.0


class TestPerimeterExtremes:
    def test_maximum_perimeter_is_line(self):
        for n in (2, 10, 25):
            assert maximum_perimeter(n) == line_system(n, seed=0).perimeter()

    def test_normalized_perimeter_bounds(self):
        assert normalized_perimeter(hexagon_system(37, seed=0)) < 0.1
        assert normalized_perimeter(line_system(37, seed=0)) == 1.0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            maximum_perimeter(0)
