"""Tests for (β, δ)-separation certification (Definition 3)."""

import math

import pytest

from repro.analysis.separation_metric import (
    best_certificate,
    cut_edge_count,
    evaluate_region,
    is_separated,
    is_separated_exact,
    minimum_beta_for_delta,
    separation_quality,
    verify_certificate,
)
from repro.system.configuration import ParticleSystem
from repro.system.initializers import (
    checkerboard_system,
    hexagon_system,
    separated_system,
)


def sorted_line(n, colors):
    nodes = [(i, 0) for i in range(n)]
    return ParticleSystem.from_nodes(nodes, colors)


class TestCutEdges:
    def test_line_cut(self):
        system = sorted_line(4, [0, 0, 1, 1])
        assert cut_edge_count(system, {(0, 0), (1, 0)}) == 1

    def test_full_region_has_no_cut(self):
        system = sorted_line(4, [0, 0, 1, 1])
        assert cut_edge_count(system, set(system.colors)) == 0


class TestEvaluateRegion:
    def test_perfect_split(self):
        system = sorted_line(4, [0, 0, 1, 1])
        cert = evaluate_region(system, {(0, 0), (1, 0)}, color=0)
        assert cert is not None
        assert cert.cut_edges == 1
        assert cert.density_inside == 1.0
        assert cert.density_outside == 0.0
        assert math.isclose(cert.beta_achieved, 0.5)

    def test_degenerate_regions_rejected(self):
        system = sorted_line(4, [0, 0, 1, 1])
        assert evaluate_region(system, set(), 0) is None
        assert evaluate_region(system, set(system.colors), 0) is None

    def test_satisfies_thresholds(self):
        system = sorted_line(4, [0, 0, 1, 1])
        cert = evaluate_region(system, {(0, 0), (1, 0)}, color=0)
        assert cert.satisfies(beta=0.6, delta=0.1)
        assert not cert.satisfies(beta=0.4, delta=0.1)


class TestExactDecision:
    def test_sorted_line_is_separated(self):
        system = sorted_line(6, [0, 0, 0, 1, 1, 1])
        assert is_separated_exact(system, beta=0.5, delta=0.1)

    def test_alternating_line_is_not(self):
        system = sorted_line(6, [0, 1, 0, 1, 0, 1])
        assert not is_separated_exact(system, beta=0.5, delta=0.1)

    def test_alternating_separated_at_huge_beta(self):
        """With β large enough, any bipartition qualifies (Definition 3
        degenerates) — the metric is only meaningful for β = O(1)."""
        system = sorted_line(6, [0, 1, 0, 1, 0, 1])
        assert is_separated_exact(system, beta=10.0, delta=0.1)

    def test_size_guard(self):
        system = hexagon_system(30, seed=0)
        with pytest.raises(ValueError):
            is_separated_exact(system, 1.0, 0.1)

    def test_exact_matches_heuristic_on_separated_instances(self):
        """Whenever the heuristic certifies, the exact decision agrees
        (soundness in the small-n regime where both run)."""
        for seed in range(5):
            system = hexagon_system(12, seed=seed)
            cert = best_certificate(system, beta=2.0, delta=0.25)
            if cert is not None and cert.satisfies(2.0, 0.25):
                assert is_separated_exact(system, 2.0, 0.25)


class TestHeuristicCertificates:
    def test_separated_system_certified(self):
        system = separated_system(64)
        cert = best_certificate(system, beta=2.0, delta=0.05)
        assert cert is not None
        assert cert.satisfies(2.0, 0.05)

    def test_checkerboard_not_certified_at_tight_beta(self):
        system = checkerboard_system(64)
        cert = best_certificate(system, beta=1.0, delta=0.05)
        assert cert is None or not cert.satisfies(1.0, 0.05)

    def test_certificate_is_verified(self):
        system = separated_system(49)
        cert = best_certificate(system, beta=2.0, delta=0.1)
        assert cert is not None
        assert verify_certificate(system, cert, beta=2.0, delta=0.1)

    def test_stale_certificate_fails_verification(self):
        system = separated_system(16)
        cert = best_certificate(system, beta=2.0, delta=0.1)
        assert cert is not None
        # Scramble the colors: the old region no longer certifies.
        scrambled = checkerboard_system(16)
        assert not verify_certificate(scrambled, cert, beta=2.0, delta=0.05)

    def test_is_separated_dispatches_by_size(self):
        small = sorted_line(6, [0, 0, 0, 1, 1, 1])
        assert is_separated(small, beta=0.5, delta=0.1)
        large = separated_system(100)
        assert is_separated(large, beta=2.0, delta=0.05)


class TestQualitySummaries:
    def test_quality_keys(self):
        quality = separation_quality(separated_system(36))
        assert set(quality) == {"beta", "impurity", "hetero_density"}
        assert quality["impurity"] <= 0.1

    def test_min_beta_for_delta(self):
        beta, cert = minimum_beta_for_delta(separated_system(64), delta=0.05)
        assert cert is not None
        assert beta < 2.0

    def test_min_beta_unseparable(self):
        beta, cert = minimum_beta_for_delta(checkerboard_system(36), delta=0.01)
        assert beta == math.inf or beta > 2.0
