"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.system.configuration import ParticleSystem
from repro.system.initializers import (
    hexagon_system,
    line_system,
    random_blob_system,
)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for tests that need raw randomness."""
    return random.Random(12345)


@pytest.fixture
def small_mixed_system() -> ParticleSystem:
    """A 20-particle bichromatic hexagon with shuffled colors."""
    return hexagon_system(20, seed=7)


@pytest.fixture
def medium_mixed_system() -> ParticleSystem:
    """A 60-particle bichromatic blob, the workhorse for chain tests."""
    return random_blob_system(60, seed=11)


@pytest.fixture
def line20() -> ParticleSystem:
    """A 20-particle line (maximum perimeter) with alternating colors."""
    return line_system(20, seed=3, shuffle=True)


def random_connected_system(
    n: int, seed: int, num_colors: int = 2
) -> ParticleSystem:
    """Helper for property tests: a random connected hole-free system."""
    return random_blob_system(n, seed=seed, num_colors=num_colors)
