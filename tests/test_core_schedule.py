"""Tests for annealing schedules."""

import math

import pytest

from repro.core.schedule import (
    ConstantSchedule,
    GeometricSchedule,
    LinearSchedule,
    effective_temperature,
    run_annealed,
)
from repro.core.separation_chain import SeparationChain
from repro.system.initializers import hexagon_system


class TestSchedules:
    def test_linear_endpoints(self):
        schedule = LinearSchedule(1.0, 5.0, 1.0, 3.0)
        assert schedule(0.0) == (1.0, 1.0)
        assert schedule(1.0) == (5.0, 3.0)
        assert schedule(0.5) == (3.0, 2.0)

    def test_linear_clamps(self):
        schedule = LinearSchedule(1.0, 5.0, 1.0, 3.0)
        assert schedule(-1.0) == (1.0, 1.0)
        assert schedule(2.0) == (5.0, 3.0)

    def test_geometric_endpoints(self):
        schedule = GeometricSchedule(1.0, 4.0, 2.0, 8.0)
        lam, gamma = schedule(0.5)
        assert math.isclose(lam, 2.0)
        assert math.isclose(gamma, 4.0)

    def test_geometric_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            GeometricSchedule(0.0, 4.0, 1.0, 1.0)

    def test_constant(self):
        schedule = ConstantSchedule(3.0, 2.0)
        assert schedule(0.7) == (3.0, 2.0)


class TestRunAnnealed:
    def test_steps_accounted(self):
        system = hexagon_system(15, seed=0)
        chain = SeparationChain(system, lam=1.0, gamma=1.0, seed=0)
        run_annealed(chain, LinearSchedule(1, 4, 1, 4), total_steps=1003, updates=7)
        assert chain.iterations == 1003

    def test_final_parameters_match_schedule_end(self):
        system = hexagon_system(15, seed=0)
        chain = SeparationChain(system, lam=1.0, gamma=1.0, seed=0)
        run_annealed(chain, LinearSchedule(1, 4, 1, 6), total_steps=500, updates=5)
        assert math.isclose(chain.lam, 4.0)
        assert math.isclose(chain.gamma, 6.0)

    def test_observer_called_per_segment(self):
        system = hexagon_system(15, seed=0)
        chain = SeparationChain(system, lam=2.0, gamma=2.0, seed=0)
        seen = []
        run_annealed(
            chain,
            ConstantSchedule(2.0, 2.0),
            total_steps=100,
            updates=4,
            observer=lambda done, c: seen.append(done),
        )
        assert seen == [25, 50, 75, 100]

    def test_invalid_arguments(self):
        system = hexagon_system(5, seed=0)
        chain = SeparationChain(system, lam=2.0, gamma=2.0, seed=0)
        with pytest.raises(ValueError):
            run_annealed(chain, ConstantSchedule(2, 2), total_steps=-1)
        with pytest.raises(ValueError):
            run_annealed(chain, ConstantSchedule(2, 2), total_steps=10, updates=0)

    def test_invariants_survive_annealing(self):
        system = hexagon_system(25, seed=3)
        chain = SeparationChain(system, lam=1.0, gamma=1.0, seed=3)
        run_annealed(chain, GeometricSchedule(1.0, 4.0, 1.0, 4.0), 20_000, 10)
        system.validate()
        assert system.is_connected()
        assert not system.has_holes()


class TestEffectiveTemperature:
    def test_unbiased_point_is_infinite(self):
        assert effective_temperature(1.0, 1.0) == math.inf

    def test_decreases_with_bias(self):
        assert effective_temperature(4.0, 4.0) < effective_temperature(2.0, 2.0)
