"""Exact-chain tests: the strongest validation of Algorithm 1.

Builds the full transition matrix on enumerated state spaces and checks
the paper's structural results: Lemma 7 (reversibility), Lemma 8
(ergodicity), Lemma 9 / Appendix A.2 (the stationary distribution), and
convergence of the simulated chain to it.
"""

import numpy as np
import pytest

from repro.core.separation_chain import SeparationChain
from repro.markov.diagnostics import (
    detailed_balance_violations,
    empirical_distribution,
    empirical_vs_exact_tv,
    is_aperiodic,
    is_irreducible,
    stationary_from_matrix,
)
from repro.markov.exact import ExactChainAnalysis, lemma9_distribution


@pytest.fixture(scope="module")
def analysis_n4():
    return ExactChainAnalysis(4, [2, 2], lam=2.0, gamma=3.0)


@pytest.fixture(scope="module")
def analysis_n4_noswap():
    return ExactChainAnalysis(4, [2, 2], lam=2.0, gamma=3.0, swaps=False)


@pytest.fixture(scope="module")
def analysis_n5():
    return ExactChainAnalysis(5, [3, 2], lam=3.0, gamma=0.9)


class TestTransitionMatrix:
    def test_rows_sum_to_one(self, analysis_n4):
        assert np.allclose(analysis_n4.matrix.sum(axis=1), 1.0)

    def test_probabilities_in_range(self, analysis_n4):
        assert (analysis_n4.matrix >= 0).all()
        assert (analysis_n4.matrix <= 1).all()

    def test_reversibility_lemma7(self, analysis_n4):
        """M(σ,τ) > 0 implies M(τ,σ) > 0 (off-diagonal)."""
        m = analysis_n4.matrix
        nonzero = m > 0
        assert (nonzero == nonzero.T).all()

    def test_ergodicity_lemma8(self, analysis_n4):
        assert is_irreducible(analysis_n4.matrix)
        assert is_aperiodic(analysis_n4.matrix)

    def test_ergodic_without_swaps(self, analysis_n4_noswap):
        """Swaps are a convergence accelerator, not needed for ergodicity."""
        assert is_irreducible(analysis_n4_noswap.matrix)

    def test_state_space_not_trivial(self, analysis_n4):
        assert len(analysis_n4.states) == 264


class TestStationaryDistribution:
    def test_detailed_balance_lemma9(self, analysis_n4):
        assert analysis_n4.detailed_balance_error() < 1e-14

    def test_detailed_balance_small_gamma(self, analysis_n5):
        assert analysis_n5.detailed_balance_error() < 1e-14

    def test_no_violations_reported(self, analysis_n4):
        violations = detailed_balance_violations(
            analysis_n4.matrix, analysis_n4.pi, tolerance=1e-12
        )
        assert violations == []

    def test_lemma9_matches_eigenvector(self, analysis_n4):
        pi_eig = analysis_n4.stationary_by_eigenvector()
        assert np.abs(pi_eig - analysis_n4.pi).max() < 1e-10

    def test_lemma9_matches_power_method(self, analysis_n4):
        pi_pow = stationary_from_matrix(analysis_n4.matrix)
        assert np.abs(pi_pow - analysis_n4.pi).max() < 1e-10

    def test_lemma9_is_stationary_vector(self, analysis_n5):
        pi = analysis_n5.pi
        assert np.abs(pi @ analysis_n5.matrix - pi).max() < 1e-14

    def test_swaps_do_not_change_stationary_distribution(
        self, analysis_n4, analysis_n4_noswap
    ):
        """Section 2.3: swaps accelerate convergence but π is identical."""
        pi_swap = analysis_n4.stationary_by_eigenvector()
        pi_noswap = analysis_n4_noswap.stationary_by_eigenvector()
        assert np.abs(pi_swap - pi_noswap).max() < 1e-10

    def test_distribution_normalized(self, analysis_n4):
        assert np.isclose(analysis_n4.pi.sum(), 1.0)

    def test_compressed_states_favored_per_state(self, analysis_n4):
        """Each minimum-perimeter state carries more mass than each
        maximum-perimeter state (entropy can still favor the much more
        numerous trees in aggregate at small λγ — the energy/entropy
        trade-off the paper's Peierls argument is about)."""
        perimeters = np.array([s.perimeter() for s in analysis_n4.states])
        pi = analysis_n4.pi
        min_mask = perimeters == perimeters.min()
        max_mask = perimeters == perimeters.max()
        assert pi[min_mask].mean() > 5 * pi[max_mask].mean()

    def test_expected_perimeter_decreases_with_lambda(self, analysis_n4):
        """Larger λ compresses: stationary E[perimeter] is smaller."""
        perimeters = np.array([s.perimeter() for s in analysis_n4.states])
        stronger = ExactChainAnalysis(4, [2, 2], lam=6.0, gamma=3.0)
        unbiased = ExactChainAnalysis(4, [2, 2], lam=1.0, gamma=1.0)
        assert (
            stronger.pi @ perimeters
            < analysis_n4.pi @ perimeters
            < unbiased.pi @ perimeters
        )


class TestSimulationConvergence:
    """The production step loop converges to the exact π in TV distance."""

    def test_empirical_matches_exact(self, analysis_n4):
        state = analysis_n4.states[0].copy()
        chain = SeparationChain(state, lam=2.0, gamma=3.0, seed=4242)
        empirical = empirical_distribution(
            chain,
            state_index=lambda: state.canonical_key(),
            steps=120_000,
            record_every=4,
        )
        exact = {
            s.canonical_key(): float(p)
            for s, p in zip(analysis_n4.states, analysis_n4.pi)
        }
        tv = empirical_vs_exact_tv(empirical, exact)
        assert tv < 0.08, f"TV distance {tv} too large"

    def test_empirical_without_swaps(self, analysis_n4_noswap):
        state = analysis_n4_noswap.states[0].copy()
        chain = SeparationChain(
            state, lam=2.0, gamma=3.0, swaps=False, seed=99
        )
        empirical = empirical_distribution(
            chain,
            state_index=lambda: state.canonical_key(),
            steps=150_000,
            record_every=4,
        )
        exact = {
            s.canonical_key(): float(p)
            for s, p in zip(analysis_n4_noswap.states, analysis_n4_noswap.pi)
        }
        assert empirical_vs_exact_tv(empirical, exact) < 0.10


class TestAnalysisUtilities:
    def test_expected_observable(self, analysis_n4):
        ones = [1.0] * len(analysis_n4.states)
        assert np.isclose(analysis_n4.expected_observable(ones), 1.0)

    def test_expected_observable_shape_check(self, analysis_n4):
        with pytest.raises(ValueError):
            analysis_n4.expected_observable([1.0, 2.0])

    def test_state_index_roundtrip(self, analysis_n4):
        for i in (0, 10, 100):
            assert analysis_n4.state_index(analysis_n4.states[i]) == i

    def test_mixing_time_is_finite(self, analysis_n4):
        t = analysis_n4.mixing_time_upper_bound(0.25)
        assert t is not None and 1 <= t <= 2**20

    def test_mixing_time_validates_epsilon(self, analysis_n4):
        with pytest.raises(ValueError):
            analysis_n4.mixing_time_upper_bound(0.0)

    def test_separation_probability_monotone_in_gamma(self):
        """Exact check of the paper's core claim on a small system: the
        stationary probability of being separated increases with γ."""
        low = ExactChainAnalysis(4, [2, 2], lam=2.0, gamma=1.0)
        high = ExactChainAnalysis(4, [2, 2], lam=2.0, gamma=6.0)
        beta, delta = 0.75, 0.2  # at most one cut edge, pure regions
        p_low = low.separation_probability(beta, delta)
        p_high = high.separation_probability(beta, delta)
        assert 0.0 < p_low < p_high < 1.0

    def test_three_color_exact_chain(self):
        """The Potts extension satisfies the same exact structure:
        detailed balance against Lemma 9's form with h counting ALL
        heterogeneous edges, ergodicity, and eigenvector agreement."""
        analysis = ExactChainAnalysis(4, [2, 1, 1], lam=2.0, gamma=3.0)
        assert len(analysis.states) == 44 * 12
        assert analysis.detailed_balance_error() < 1e-14
        assert is_irreducible(analysis.matrix)
        pi_eig = analysis.stationary_by_eigenvector()
        assert np.abs(pi_eig - analysis.pi).max() < 1e-10

    def test_lemma9_distribution_uniform_at_unit_parameters(self):
        """λ = γ = 1 weights every hole-free configuration equally."""
        analysis = ExactChainAnalysis(4, [2, 2], lam=1.0, gamma=1.0)
        pi = lemma9_distribution(analysis.states, 1.0, 1.0)
        assert np.allclose(pi, 1.0 / len(analysis.states))
