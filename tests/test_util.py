"""Tests for RNG helpers and serialization."""

import random

import pytest

from repro.system.initializers import hexagon_system
from repro.util.rng import (
    derive_seed,
    make_rng,
    maybe_seeded,
    random_unit,
    seed_entropy,
    spawn_rngs,
    uniform_chunk,
)
from repro.util.serialization import (
    configuration_from_json,
    configuration_to_json,
    load_configuration,
    load_payload,
    payload_from_json,
    payload_to_json,
    save_configuration,
    save_payload,
)


class TestRng:
    def test_make_rng_from_int(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_make_rng_passthrough(self):
        rng = random.Random(0)
        assert make_rng(rng) is rng

    def test_spawn_rngs_independent_and_deterministic(self):
        a = spawn_rngs(7, 3)
        b = spawn_rngs(7, 3)
        assert [r.random() for r in a] == [r.random() for r in b]
        values = {r.random() for r in spawn_rngs(7, 3)}
        assert len(values) == 3

    def test_spawn_rngs_validates(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_random_unit_open_interval(self):
        rng = make_rng(1)
        for _ in range(1000):
            q = random_unit(rng)
            assert 0.0 < q < 1.0

    def test_maybe_seeded(self):
        assert maybe_seeded(None, 3).random() == random.Random(3).random()
        assert maybe_seeded(9, 3).random() == random.Random(9).random()

    def test_uniform_chunk_matches_sequential_draws(self):
        chunked = uniform_chunk(make_rng(11), 64)
        reference = make_rng(11)
        assert chunked == [reference.random() for _ in range(64)]

    def test_uniform_chunk_validates(self):
        with pytest.raises(ValueError):
            uniform_chunk(make_rng(0), -1)

    def test_seed_entropy_int_passthrough(self):
        assert seed_entropy(42) == 42

    def test_seed_entropy_from_rng_state(self):
        # Distinct generator states yield distinct bases (the historical
        # bug collapsed every non-int seed to 0).
        assert seed_entropy(random.Random(1)) != seed_entropy(random.Random(2))
        assert seed_entropy(random.Random(1)) == seed_entropy(random.Random(1))

    def test_seed_entropy_rejects_other_types(self):
        with pytest.raises(TypeError):
            seed_entropy("not-a-seed")

    def test_derive_seed_deterministic_and_sensitive(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
        assert derive_seed(1, "a", 2) != derive_seed(1, "a", 3)
        assert derive_seed(1, "a", 2) != derive_seed(2, "a", 2)
        assert 0 <= derive_seed(0) < 2 ** 64


class TestSerialization:
    def test_roundtrip(self):
        system = hexagon_system(25, seed=4)
        restored = configuration_from_json(configuration_to_json(system))
        assert restored.colors == system.colors
        assert restored.num_colors == system.num_colors
        assert restored.edge_total == system.edge_total
        assert restored.hetero_total == system.hetero_total

    def test_file_roundtrip(self, tmp_path):
        system = hexagon_system(10, seed=1)
        path = tmp_path / "config.json"
        save_configuration(system, path)
        assert load_configuration(path).colors == system.colors

    def test_rejects_unknown_version(self):
        with pytest.raises(ValueError):
            configuration_from_json('{"format_version": 99}')

    def test_order_preserving_roundtrip(self):
        """sort_nodes=False keeps dict insertion order, which determines
        the chain's particle indexing (trajectory-faithful restarts)."""
        system = hexagon_system(25, seed=4)
        text = configuration_to_json(system, sort_nodes=False)
        restored = configuration_from_json(text)
        assert list(restored.colors) == list(system.colors)

    def test_payload_roundtrip(self):
        payload = {"key": "abc", "values": [1, 2.5, "x"]}
        assert payload_from_json(payload_to_json(payload)) == payload

    def test_payload_rejects_unknown_version(self):
        with pytest.raises(ValueError):
            payload_from_json('{"format_version": 99, "payload": {}}')
        with pytest.raises(ValueError):
            payload_from_json('{"format_version": 1, "payload": []}')

    def test_payload_file_roundtrip_is_atomic(self, tmp_path):
        path = tmp_path / "cell.json"
        save_payload({"a": 1}, path)
        assert load_payload(path) == {"a": 1}
        assert list(tmp_path.iterdir()) == [path]  # no stray temp files
