"""Tests for RNG helpers and serialization."""

import random

import pytest

from repro.system.initializers import hexagon_system
from repro.util.rng import make_rng, maybe_seeded, random_unit, spawn_rngs
from repro.util.serialization import (
    configuration_from_json,
    configuration_to_json,
    load_configuration,
    save_configuration,
)


class TestRng:
    def test_make_rng_from_int(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_make_rng_passthrough(self):
        rng = random.Random(0)
        assert make_rng(rng) is rng

    def test_spawn_rngs_independent_and_deterministic(self):
        a = spawn_rngs(7, 3)
        b = spawn_rngs(7, 3)
        assert [r.random() for r in a] == [r.random() for r in b]
        values = {r.random() for r in spawn_rngs(7, 3)}
        assert len(values) == 3

    def test_spawn_rngs_validates(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_random_unit_open_interval(self):
        rng = make_rng(1)
        for _ in range(1000):
            q = random_unit(rng)
            assert 0.0 < q < 1.0

    def test_maybe_seeded(self):
        assert maybe_seeded(None, 3).random() == random.Random(3).random()
        assert maybe_seeded(9, 3).random() == random.Random(9).random()


class TestSerialization:
    def test_roundtrip(self):
        system = hexagon_system(25, seed=4)
        restored = configuration_from_json(configuration_to_json(system))
        assert restored.colors == system.colors
        assert restored.num_colors == system.num_colors
        assert restored.edge_total == system.edge_total
        assert restored.hetero_total == system.hetero_total

    def test_file_roundtrip(self, tmp_path):
        system = hexagon_system(10, seed=1)
        path = tmp_path / "config.json"
        save_configuration(system, path)
        assert load_configuration(path).colors == system.colors

    def test_rejects_unknown_version(self):
        with pytest.raises(ValueError):
            configuration_from_json('{"format_version": 99}')
