"""Chaos suite for the engine's resilience layer.

Injects crashes, worker kills, hangs, and corrupted results into the
sweep engine and asserts the invariant the layer exists for: a sweep
that limps through failures produces results (and checkpoint payloads)
bit-identical to an undisturbed run, and quarantine degrades to partial
results instead of aborting.
"""

import hashlib
import json
import threading
import time

import pytest

from repro.experiments.parallel import (
    BatchRunner,
    CellTask,
    checkpoint_path,
    execute_cells,
    read_checkpoint_payload,
    run_cell,
    task_payload,
)
from repro.experiments.resilience import (
    CellFailedError,
    FailedCell,
    FailurePolicy,
    InjectedFault,
    ResultValidationError,
    RetryPolicy,
    failures_manifest_path,
    is_failed,
    load_failures_manifest,
    plan_fault,
    surviving,
)
from repro.experiments.sweep import grid, run_sweep
from repro.obs import Instrumentation, MetricsRegistry, ProgressReporter
from repro.system.initializers import random_blob_system
from repro.util.codec import decode_configuration
from repro.util.serialization import (
    configuration_from_json,
    configuration_to_json,
    load_payload,
    save_payload,
    sweep_stale_temp_files,
)


def make_tasks(count=3, n=16, steps=300, checkpoints=(), kernel="auto"):
    system = random_blob_system(n, seed=5)
    system_json = configuration_to_json(system, sort_nodes=False)
    return [
        CellTask(
            lam=3.0,
            gamma=3.0,
            replica=replica,
            seed=500 + replica,
            steps=steps,
            system_json=system_json,
            checkpoints=tuple(checkpoints),
            label=f"r{replica}",
            kernel=kernel,
        )
        for replica in range(count)
    ]


def final_jsons(results):
    return [configuration_to_json(result.system) for result in results]


def payload_digests(directory, tasks):
    """Checkpoint-content digests, excluding the worker wall-time.

    Configurations are canonicalized through a decode/encode round trip
    so the digest is codec-independent: binary and JSON checkpoints of
    the same trajectory hash identically.
    """

    def canon(item):
        if isinstance(item, (bytes, bytearray)):
            system = decode_configuration(bytes(item))
        else:
            system = configuration_from_json(item)
        return configuration_to_json(system)

    digests = {}
    for task in tasks:
        payload = read_checkpoint_payload(checkpoint_path(directory, task))
        payload.pop("wall_time", None)
        payload["final"] = canon(payload["final"])
        payload["snapshots"] = [canon(s) for s in payload.get("snapshots", [])]
        digests[task.key()] = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()
    return digests


def crash_rule(tmp_path, match="*", times=1, mode="crash", **extra):
    ledger = tmp_path / f"ledger-{mode}-{match.replace('*', 'all')}"
    return {"mode": mode, "match": match, "times": times,
            "dir": str(ledger), **extra}


FAST_RETRY = RetryPolicy(max_retries=2, backoff_base=0.0)


class TestRetryPolicy:
    def test_delay_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_max=1.0)
        for attempt in (1, 2, 3, 8):
            first = policy.delay(attempt, token="cell-a")
            assert first == policy.delay(attempt, token="cell-a")
            base = min(1.0, 0.1 * 2.0 ** (attempt - 1))
            assert 0.5 * base <= first <= base
        # different cells back off differently (jitter decorrelates)
        assert policy.delay(1, "cell-a") != policy.delay(1, "cell-b")

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1).validate()
        with pytest.raises(ValueError):
            RetryPolicy(task_timeout=0.0).validate()
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5).validate()
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=2.0, backoff_max=1.0).validate()
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)
        RetryPolicy(max_retries=3, task_timeout=1.0).validate()

    def test_failure_policy_validation(self):
        with pytest.raises(ValueError):
            FailurePolicy(mode="explode").validate()
        with pytest.raises(ValueError):
            FailurePolicy(max_pool_restarts=-1).validate()
        assert not FailurePolicy(mode="raise").retries_enabled
        assert FailurePolicy(mode="retry").retries_enabled
        assert FailurePolicy(mode="quarantine").retries_enabled


class TestFaultInjection:
    def test_ledger_claims_exactly_times_slots(self, tmp_path):
        rule = crash_rule(tmp_path, times=2)
        payload = {"fault": rule}
        assert plan_fault(payload, "k1", "") is not None
        assert plan_fault(payload, "k1", "") is not None
        assert plan_fault(payload, "k1", "") is None  # budget spent
        assert plan_fault(payload, "k2", "") is not None  # per-key budget

    def test_match_filters_by_key_and_label(self, tmp_path):
        rule = crash_rule(tmp_path, match="special", times=5)
        payload = {"fault": rule}
        assert plan_fault(payload, "other", "plain") is None
        assert plan_fault(payload, "special-key", "") is not None
        assert plan_fault(payload, "k", "a special label") is not None

    def test_env_spec_reaches_worker(self, tmp_path, monkeypatch):
        from repro.experiments.resilience import FAULT_ENV

        rule = crash_rule(tmp_path)
        monkeypatch.setenv(FAULT_ENV, json.dumps(rule))
        task = make_tasks(1)[0]
        with pytest.raises(InjectedFault):
            run_cell(task_payload(task))
        # budget spent: the next attempt succeeds
        result = run_cell(task_payload(task))
        assert result["iterations"] == task.steps

    def test_unreadable_env_spec_is_ignored(self, monkeypatch):
        from repro.experiments.resilience import FAULT_ENV

        monkeypatch.setenv(FAULT_ENV, "/nonexistent/spec.json")
        task = make_tasks(1)[0]
        assert run_cell(task_payload(task))["iterations"] == task.steps

    def test_exit_demotes_to_crash_in_main_process(self, tmp_path):
        # os._exit in the serial backend would kill the test process;
        # the hook degrades it to a raised InjectedFault instead.
        rule = crash_rule(tmp_path, mode="exit")
        task = make_tasks(1)[0]
        payload = task_payload(task)
        payload["fault"] = rule
        with pytest.raises(InjectedFault):
            run_cell(payload)


class TestSerialResilience:
    def test_crash_then_retry_is_bit_identical(self, tmp_path):
        tasks = make_tasks()
        clean = execute_cells(tasks, backend="serial")
        injected = execute_cells(
            tasks,
            backend="serial",
            retry=FAST_RETRY,
            failure=FailurePolicy(mode="retry"),
            fault_spec=crash_rule(tmp_path, times=1),
        )
        assert final_jsons(clean) == final_jsons(injected)
        assert [r.iterations for r in injected] == [t.steps for t in tasks]

    def test_raise_mode_propagates_original_error(self, tmp_path):
        tasks = make_tasks(1)
        with pytest.raises(InjectedFault):
            execute_cells(
                tasks,
                backend="serial",
                fault_spec=crash_rule(tmp_path, times=5),
            )

    def test_retry_mode_raises_cell_failed_after_budget(self, tmp_path):
        tasks = make_tasks(1)
        with pytest.raises(CellFailedError):
            execute_cells(
                tasks,
                backend="serial",
                retry=RetryPolicy(max_retries=1, backoff_base=0.0),
                failure=FailurePolicy(mode="retry"),
                fault_spec=crash_rule(tmp_path, times=5),
            )

    def test_quarantine_records_manifest_and_resume_recomputes(
        self, tmp_path
    ):
        tasks = make_tasks()
        ckpt = tmp_path / "ckpt"
        partial = execute_cells(
            tasks,
            backend="serial",
            checkpoint_dir=ckpt,
            retry=RetryPolicy(max_retries=1, backoff_base=0.0),
            failure=FailurePolicy(mode="quarantine"),
            fault_spec=crash_rule(tmp_path, match="r1", times=99),
        )
        assert [is_failed(r) for r in partial] == [False, True, False]
        assert isinstance(partial[1], FailedCell)
        assert partial[1].kind == "exception"
        assert partial[1].attempts == 2
        assert len(surviving(partial)) == 2

        manifest = load_failures_manifest(ckpt)
        assert len(manifest) == 1
        assert manifest[0]["key"] == tasks[1].key()
        assert manifest[0]["label"] == "r1"
        assert manifest[0]["attempts"] == 2

        # quarantined cells have no checkpoint files on disk
        assert not checkpoint_path(ckpt, tasks[1]).exists()
        assert checkpoint_path(ckpt, tasks[0]).exists()

        # a fault-free --resume recomputes exactly the quarantined cell
        fixed = execute_cells(
            tasks, backend="serial", checkpoint_dir=ckpt, resume=True
        )
        assert not any(is_failed(r) for r in fixed)
        assert fixed[0].from_checkpoint and fixed[2].from_checkpoint
        assert not fixed[1].from_checkpoint
        # fully-successful rerun clears the manifest
        assert load_failures_manifest(ckpt) == []
        assert not failures_manifest_path(ckpt).exists()

        clean = execute_cells(tasks, backend="serial")
        assert final_jsons(clean) == final_jsons(fixed)

    def test_serial_posthoc_timeout_counts_as_failure(self, tmp_path):
        tasks = make_tasks(1, steps=50)
        partial = execute_cells(
            tasks,
            backend="serial",
            retry=RetryPolicy(
                max_retries=0, task_timeout=0.5, backoff_base=0.0
            ),
            failure=FailurePolicy(mode="quarantine"),
            fault_spec=crash_rule(
                tmp_path, mode="hang", times=1, hang_seconds=0.8
            ),
        )
        assert is_failed(partial[0])
        assert partial[0].kind == "timeout"

    def test_corrupt_result_is_validated_and_retried(self, tmp_path):
        tasks = make_tasks()
        ckpt = tmp_path / "ckpt"
        clean = execute_cells(tasks, backend="serial")
        injected = execute_cells(
            tasks,
            backend="serial",
            checkpoint_dir=ckpt,
            retry=FAST_RETRY,
            failure=FailurePolicy(mode="retry"),
            fault_spec=crash_rule(tmp_path, mode="corrupt", match="r2"),
        )
        assert final_jsons(clean) == final_jsons(injected)
        # the corrupt payload never reached the checkpoint directory
        for task in tasks:
            payload = read_checkpoint_payload(checkpoint_path(ckpt, task))
            assert payload["iterations"] == task.steps

    def test_retry_metrics_and_failure_metrics(self, tmp_path):
        metrics = MetricsRegistry()
        obs = Instrumentation(metrics=metrics)
        tasks = make_tasks()
        execute_cells(
            tasks,
            backend="serial",
            obs=obs,
            retry=RetryPolicy(max_retries=1, backoff_base=0.0),
            failure=FailurePolicy(mode="quarantine"),
            fault_spec=crash_rule(tmp_path, match="r0", times=99),
        )
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["engine.retries"] == 1
        assert snapshot["counters"]["engine.failures"] == 1


class TestProcessResilience:
    def test_crash_and_broken_pool_bit_identical(self, tmp_path):
        """The acceptance scenario: injected worker crashes plus one
        forced BrokenProcessPool; the sweep completes and per-cell
        checkpoint payloads match an uninjected run's exactly."""
        tasks = make_tasks(4, steps=200)
        clean_dir = tmp_path / "clean"
        execute_cells(
            tasks, backend="process", workers=2, checkpoint_dir=clean_dir
        )
        clean = payload_digests(clean_dir, tasks)

        metrics = MetricsRegistry()
        chaos_dir = tmp_path / "chaos"
        execute_cells(
            tasks,
            backend="process",
            workers=2,
            checkpoint_dir=chaos_dir,
            obs=Instrumentation(metrics=metrics),
            retry=FAST_RETRY,
            failure=FailurePolicy(mode="retry", max_pool_restarts=3),
            fault_spec=[
                crash_rule(tmp_path, match="r0", times=1),
                # worker os._exit -> BrokenProcessPool -> pool rebuild
                crash_rule(tmp_path, match="r2", times=1, mode="exit"),
            ],
        )
        assert payload_digests(chaos_dir, tasks) == clean
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["engine.pool_restarts"] >= 1

    def test_hang_hits_timeout_and_retry_completes(self, tmp_path):
        tasks = make_tasks(3, steps=200)
        clean = execute_cells(tasks, backend="serial")
        injected = execute_cells(
            tasks,
            backend="process",
            workers=2,
            retry=RetryPolicy(
                max_retries=2, task_timeout=2.0, backoff_base=0.0
            ),
            failure=FailurePolicy(mode="retry"),
            fault_spec=crash_rule(
                tmp_path, mode="hang", match="r1", hang_seconds=20.0
            ),
        )
        assert final_jsons(clean) == final_jsons(injected)

    def test_quarantine_completes_with_partial_results(self, tmp_path):
        tasks = make_tasks(3, steps=200)
        ckpt = tmp_path / "ckpt"
        partial = execute_cells(
            tasks,
            backend="process",
            workers=2,
            checkpoint_dir=ckpt,
            retry=RetryPolicy(max_retries=0, backoff_base=0.0),
            failure=FailurePolicy(mode="quarantine"),
            fault_spec=crash_rule(tmp_path, match="r1", times=99),
        )
        assert [is_failed(r) for r in partial] == [False, True, False]
        assert len(load_failures_manifest(ckpt)) == 1

    def test_pool_restarts_exhausted(self, tmp_path):
        from repro.experiments.resilience import PoolRestartsExhausted

        tasks = make_tasks(2, steps=100)
        with pytest.raises(PoolRestartsExhausted):
            execute_cells(
                tasks,
                backend="process",
                workers=2,
                retry=RetryPolicy(max_retries=5, backoff_base=0.0),
                failure=FailurePolicy(mode="retry", max_pool_restarts=1),
                fault_spec=crash_rule(tmp_path, mode="exit", times=99),
            )


class TestBatchResilience:
    def test_batch_crash_recomputes_group(self, tmp_path):
        tasks = make_tasks(3, steps=200, kernel="batch")
        clean = BatchRunner(backend="serial").run(tasks)
        injected = BatchRunner(
            backend="serial",
            retry=FAST_RETRY,
            failure=FailurePolicy(mode="retry"),
            fault_spec=crash_rule(tmp_path, times=1),
        ).run(tasks)
        assert final_jsons(clean) == final_jsons(injected)

    def test_batch_truncation_is_validation_error_not_silent(
        self, tmp_path
    ):
        """The historical bug: a worker returning fewer payloads than
        group members was zip-truncated silently.  Now it fails
        validation and the group is recomputed on retry."""
        tasks = make_tasks(3, steps=200, kernel="batch")
        clean = BatchRunner(backend="serial").run(tasks)
        injected = BatchRunner(
            backend="serial",
            retry=FAST_RETRY,
            failure=FailurePolicy(mode="retry"),
            fault_spec=crash_rule(tmp_path, mode="truncate", times=1),
        ).run(tasks)
        assert final_jsons(clean) == final_jsons(injected)

    def test_batch_truncation_without_retries_raises(self, tmp_path):
        tasks = make_tasks(3, steps=100, kernel="batch")
        with pytest.raises(ResultValidationError):
            BatchRunner(
                backend="serial",
                fault_spec=crash_rule(tmp_path, mode="truncate", times=1),
            ).run(tasks)

    def test_batch_quarantine_fails_whole_group(self, tmp_path):
        tasks = make_tasks(3, steps=100, kernel="batch")
        partial = BatchRunner(
            backend="serial",
            checkpoint_dir=tmp_path / "ckpt",
            retry=RetryPolicy(max_retries=0, backoff_base=0.0),
            failure=FailurePolicy(mode="quarantine"),
            fault_spec=crash_rule(tmp_path, times=99),
        ).run(tasks)
        assert all(is_failed(r) for r in partial)
        assert len(load_failures_manifest(tmp_path / "ckpt")) == 3

    def test_batch_corrupt_member_recomputed(self, tmp_path):
        tasks = make_tasks(3, steps=200, kernel="batch")
        clean = BatchRunner(backend="serial").run(tasks)
        injected = BatchRunner(
            backend="serial",
            retry=FAST_RETRY,
            failure=FailurePolicy(mode="retry"),
            fault_spec=crash_rule(tmp_path, mode="corrupt", times=1),
        ).run(tasks)
        assert final_jsons(clean) == final_jsons(injected)


class TestSweepHarnessDegradation:
    def test_quarantined_sweep_reports_partial_points(self, tmp_path):
        points = run_sweep(
            grid([2.0], [2.0, 3.0]),
            metrics={"hetero": lambda s: float(s.hetero_total)},
            n=16,
            iterations=200,
            replicas=2,
            seed=9,
            retry=RetryPolicy(max_retries=0, backoff_base=0.0),
            failure=FailurePolicy(mode="quarantine"),
            fault_spec=crash_rule(tmp_path, match="gamma=3.0", times=99),
        )
        healthy, failed = points
        assert healthy.metrics["_replicas"] == 2.0
        assert healthy.system is not None
        assert failed.metrics["_replicas"] == 0.0
        assert failed.system is None
        assert failed.metrics["hetero"] != failed.metrics["hetero"]  # NaN

    def test_figure3_failed_cell_gets_failed_phase(self, tmp_path):
        from repro.experiments.figure3 import run_figure3

        result = run_figure3(
            n=16,
            lambdas=[3.0],
            gammas=[1.0, 4.0],
            iterations=200,
            seed=9,
            retry=RetryPolicy(max_retries=0, backoff_base=0.0),
            failure=FailurePolicy(mode="quarantine"),
            fault_spec=crash_rule(tmp_path, match="gamma=4.0", times=99),
        )
        assert result.phases[(3.0, 4.0)] == "failed"
        assert result.phases[(3.0, 1.0)] != "failed"
        assert "??" in result.grid_table()


class TestSavePayload:
    def test_unique_temp_names_do_not_collide(self, tmp_path):
        """Concurrent writers to the same target must never clobber
        each other's half-written temp file; with mkstemp each writer
        gets its own and the last replace wins atomically."""
        target = tmp_path / "cell.json"
        errors = []

        def writer(tag):
            try:
                for _ in range(25):
                    save_payload({"tag": tag}, target)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(tag,)) for tag in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert load_payload(target)["tag"] in range(4)
        assert list(tmp_path.glob("*.tmp")) == []

    def test_sweep_stale_temp_files(self, tmp_path):
        (tmp_path / "cell-abc.json.x1.tmp").write_text("half-written")
        (tmp_path / "cell-def.json.x2.tmp").write_text("half-written")
        (tmp_path / "cell-abc.json").write_text("keep")
        assert sweep_stale_temp_files(tmp_path) == 2
        assert list(tmp_path.glob("*.tmp")) == []
        assert (tmp_path / "cell-abc.json").exists()

    def test_engine_start_sweeps_stale_temps(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        stale = ckpt / "cell-dead.json.x.tmp"
        stale.write_text("truncated by a hard kill")
        execute_cells(make_tasks(1, steps=50), backend="serial",
                      checkpoint_dir=ckpt)
        assert not stale.exists()


class FakeClock:
    def __init__(self, values):
        self.values = list(values)

    def __call__(self):
        if len(self.values) > 1:
            return self.values.pop(0)
        return self.values[0]


class TestProgressReporterFixes:
    def test_restored_cells_excluded_from_ewma(self):
        """A --resume burst of restored cells must not poison the ETA
        for the remaining live cells."""
        import io

        class Restored:
            from_checkpoint = True
            wall_time = 0.0
            iterations = 0

        class Live:
            from_checkpoint = False
            wall_time = 2.0
            iterations = 100

        stream = io.StringIO()
        clock = FakeClock([0.0, 0.001, 0.002, 2.0, 4.0])
        reporter = ProgressReporter(
            stream=stream, smoothing=1.0, clock=clock
        )
        reporter(1, 4, Restored())  # microsecond restores
        reporter(2, 4, Restored())
        assert "eta n/a" in stream.getvalue()
        reporter(3, 4, Live())  # first live: interval 2.0 from start
        reporter(4, 4, Live())
        lines = stream.getvalue().splitlines()
        # EWMA reflects the 2 s live spacing, not the restore burst
        assert "ewma 2.00s" in lines[-1]

    def test_failed_cells_are_tagged(self):
        import io

        stream = io.StringIO()
        reporter = ProgressReporter(
            stream=stream, clock=FakeClock([0.0, 1.0])
        )
        task = make_tasks(1)[0]
        reporter(
            1, 1,
            FailedCell(task=task, error="boom", kind="exception", attempts=2),
        )
        assert "[FAILED]" in stream.getvalue()

    def test_heartbeat_and_progress_lines_never_interleave(self):
        class LineCheckingStream:
            def __init__(self):
                self.buffer = []
                self.partial = ""

            def write(self, text):
                # simulate a slow consumer to widen the race window
                time.sleep(0.001)
                self.partial += text
                while "\n" in self.partial:
                    line, self.partial = self.partial.split("\n", 1)
                    self.buffer.append(line)

            def flush(self):
                pass

        class Live:
            from_checkpoint = False
            wall_time = 0.01
            iterations = 10

        stream = LineCheckingStream()
        reporter = ProgressReporter(stream=stream)
        reporter.start_heartbeat(interval=0.002)
        try:
            for i in range(30):
                reporter(i + 1, 30, Live())
        finally:
            reporter.stop()
        for line in stream.buffer:
            assert line.startswith("[repro] ")
            assert line.count("[repro]") == 1
