"""Tests for hole burn-in (Lemma 6) and the boundary turning invariant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.separation_chain import SeparationChain
from repro.lattice.boundary import boundary_walk, turning_number
from repro.lattice.geometry import hexagon
from repro.system.initializers import annulus_system, random_blob_system


class TestAnnulusSystem:
    def test_has_a_hole(self):
        system = annulus_system(outer_radius=3)
        assert system.has_holes()
        assert system.is_connected()

    def test_hole_size(self):
        from repro.lattice.holes import find_holes

        system = annulus_system(outer_radius=4, inner_radius=2)
        holes = find_holes(set(system.colors))
        assert len(holes) == 1
        assert len(holes[0]) == 19  # hexagon_size(2)

    def test_validates_radii(self):
        with pytest.raises(ValueError):
            annulus_system(outer_radius=2, inner_radius=2)
        with pytest.raises(ValueError):
            annulus_system(outer_radius=1, inner_radius=-1)


class TestHoleConservation:
    """Holes are topological invariants under the printed rules.

    Properties 4/5 are symmetric in (ℓ, ℓ') and condition (i) mirrors
    the prop-blocked move-into-a-five-neighbor-node case, so every
    allowed move is reversible — which makes hole count conserved: no
    move can create a hole (as [6] proves) and therefore, by symmetry,
    none can eliminate one.  We verified this over millions of steps:
    from a holed start the hole fluctuates in size and position but
    never merges with the exterior; from hole-free starts no hole ever
    appears.  Lemma 6's burn-in claim relies on the full compression
    paper's machinery beyond the brief announcement's printed rules;
    the stationary analysis (Lemmas 8/9) concerns exactly the hole-free
    space, which is invariant — and that is what these tests pin down.
    """

    @pytest.mark.parametrize("seed", [1, 2])
    def test_hole_fluctuates_but_is_conserved(self, seed):
        from repro.lattice.holes import find_holes

        system = annulus_system(outer_radius=3, seed=seed)
        assert system.has_holes()
        chain = SeparationChain(system, lam=1.5, gamma=1.0, seed=seed)
        sizes = set()
        for _ in range(40):
            chain.run(2_000)
            holes = find_holes(set(system.colors))
            assert len(holes) >= 1, "hole vanished: conservation violated"
            sizes.add(sum(len(h) for h in holes))
            assert system.is_connected()
        assert len(sizes) > 1, "hole size never fluctuated"

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_hole_free_space_is_invariant(self, seed):
        system = random_blob_system(25, seed=seed)
        chain = SeparationChain(system, lam=1.0, gamma=1.0, seed=seed)
        for _ in range(40):
            chain.run(2_000)
            assert not system.has_holes()

    def test_frozen_ring_admits_no_moves(self):
        """The minimal 6-ring around a hole is completely frozen: every
        (particle, direction) proposal fails conditions (i)-(ii)."""
        from repro.core.separation_chain import evaluate_move
        from repro.lattice.geometry import ring
        from repro.lattice.triangular import NEIGHBOR_OFFSETS
        from repro.system.configuration import ParticleSystem

        nodes = ring((0, 0), 1)
        system = ParticleSystem.from_nodes(nodes, [0] * 6)
        for src in nodes:
            for dx, dy in NEIGHBOR_OFFSETS:
                dst = (src[0] + dx, src[1] + dy)
                if dst in system.colors:
                    continue
                prob, _, _ = evaluate_move(system.colors, src, dst, 4.0, 4.0)
                assert prob == 0.0, (src, dst)


class TestTurningNumber:
    def test_degenerate_walks(self):
        assert turning_number([]) == 0
        assert turning_number([(0, 0)]) == 0

    def test_line_of_two(self):
        assert turning_number(boundary_walk({(0, 0), (1, 0)})) == 6

    def test_triangle(self):
        assert turning_number(boundary_walk({(0, 0), (1, 0), (0, 1)})) == 6

    def test_hexagon(self):
        assert turning_number(boundary_walk(set(hexagon(37)))) == 6

    @given(st.integers(min_value=2, max_value=60), st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_turning_is_always_six(self, n, seed):
        """Discrete Gauss-Bonnet: every connected hole-free
        configuration's outer boundary turns by exactly +360°."""
        system = random_blob_system(n, seed=seed)
        walk = boundary_walk(set(system.colors))
        assert turning_number(walk) == 6

    @given(st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_turning_after_chain_run(self, seed):
        system = random_blob_system(30, seed=seed)
        SeparationChain(system, lam=3.0, gamma=2.0, seed=seed).run(3_000)
        assert turning_number(boundary_walk(set(system.colors))) == 6
