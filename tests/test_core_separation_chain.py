"""Tests for the separation chain (Algorithm 1)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.separation_chain import (
    E_DST,
    E_SRC,
    MOVE_OK,
    RING_OFFSETS,
    SeparationChain,
    evaluate_move,
    evaluate_swap,
    stationary_log_weight,
)
from repro.lattice.triangular import NEIGHBOR_OFFSETS, edge_ring
from repro.system.initializers import (
    hexagon_system,
    line_system,
    random_blob_system,
)


class TestTables:
    def test_ring_offsets_match_edge_ring(self):
        for d in range(6):
            dx, dy = NEIGHBOR_OFFSETS[d]
            expected = edge_ring((0, 0), (dx, dy))
            assert [tuple(o) for o in RING_OFFSETS[d]] == expected

    def test_e_src_e_dst_counts(self):
        assert E_SRC[0] == 0 and E_DST[0] == 0
        assert E_SRC[0b11111111] == 5 and E_DST[0b11111111] == 5
        # Position 0 (a common neighbor) counts on both sides.
        assert E_SRC[1] == 1 and E_DST[1] == 1
        # Position 2 (beyond the destination) counts only on the dst side.
        assert E_SRC[1 << 2] == 0 and E_DST[1 << 2] == 1

    def test_move_ok_table_size(self):
        assert len(MOVE_OK) == 256


class TestConstruction:
    def test_invalid_parameters(self):
        system = hexagon_system(10, seed=0)
        with pytest.raises(ValueError):
            SeparationChain(system, lam=0.0, gamma=1.0)
        with pytest.raises(ValueError):
            SeparationChain(system, lam=1.0, gamma=-2.0)

    def test_negative_steps_raise(self):
        chain = SeparationChain(hexagon_system(5, seed=0), lam=2, gamma=2)
        with pytest.raises(ValueError):
            chain.run(-1)

    def test_repr(self):
        chain = SeparationChain(hexagon_system(5, seed=0), lam=2, gamma=3)
        assert "lam=2" in repr(chain) and "gamma=3" in repr(chain)


class TestInvariants:
    """Lemma 6: connectivity forever; holes never created once absent."""

    @given(st.integers(0, 50))
    @settings(max_examples=12, deadline=None)
    def test_connectivity_and_holes_preserved(self, seed):
        system = random_blob_system(25, seed=seed)
        chain = SeparationChain(system, lam=3.0, gamma=2.0, seed=seed)
        for _ in range(20):
            chain.run(250)
            assert system.is_connected()
            assert not system.has_holes()

    @given(st.integers(0, 20))
    @settings(max_examples=8, deadline=None)
    def test_counters_stay_consistent(self, seed):
        system = random_blob_system(30, seed=seed)
        chain = SeparationChain(system, lam=4.0, gamma=4.0, seed=seed)
        chain.run(5000)
        system.validate()

    def test_color_counts_conserved(self):
        system = hexagon_system(40, counts=[25, 15], seed=1)
        chain = SeparationChain(system, lam=4.0, gamma=4.0, seed=1)
        chain.run(5000)
        from repro.system.observables import color_counts

        assert color_counts(system) == [25, 15]

    def test_particle_count_conserved(self):
        system = random_blob_system(33, seed=5)
        chain = SeparationChain(system, lam=2.0, gamma=0.9, seed=5)
        chain.run(5000)
        assert system.n == 33

    def test_line_system_heals_and_compresses(self):
        system = line_system(30, seed=2)
        initial_perimeter = system.perimeter()
        chain = SeparationChain(system, lam=4.0, gamma=4.0, seed=2)
        chain.run(60_000)
        assert system.perimeter() < initial_perimeter
        assert system.is_connected()


class TestStepSemantics:
    def test_step_counts_iterations(self):
        chain = SeparationChain(hexagon_system(10, seed=0), lam=2, gamma=2, seed=0)
        chain.run(100)
        assert chain.iterations == 100

    def test_acceptance_rate_bounds(self):
        chain = SeparationChain(hexagon_system(20, seed=0), lam=4, gamma=4, seed=0)
        chain.run(2000)
        assert 0.0 <= chain.acceptance_rate() <= 1.0

    def test_no_swaps_means_no_swap_acceptances(self):
        system = hexagon_system(20, seed=0)
        chain = SeparationChain(system, lam=3, gamma=3, swaps=False, seed=0)
        chain.run(5000)
        assert chain.accepted_swaps == 0

    def test_seed_reproducibility(self):
        results = []
        for _ in range(2):
            system = hexagon_system(20, seed=9)
            chain = SeparationChain(system, lam=3, gamma=2, seed=77)
            chain.run(3000)
            results.append(sorted(system.colors.items()))
        assert results[0] == results[1]

    def test_set_parameters_rebuilds_tables(self):
        chain = SeparationChain(hexagon_system(10, seed=0), lam=2, gamma=2, seed=0)
        chain.set_parameters(lam=5.0)
        assert chain.lam == 5.0
        assert math.isclose(chain._lam_pow[6], 5.0)
        chain.set_parameters(gamma=3.0)
        assert math.isclose(chain._gam_pow_swap[11], 3.0)
        with pytest.raises(ValueError):
            chain.set_parameters(lam=0)

    def test_refresh_positions(self):
        system = hexagon_system(10, seed=0)
        chain = SeparationChain(system, lam=2, gamma=2, seed=0)
        # External mutation then refresh keeps the chain usable.
        src = next(iter(system.colors))
        from repro.lattice.triangular import neighbors

        for dst in neighbors(src):
            if dst not in system.colors:
                system.move_particle(src, dst)
                break
        chain.refresh_positions()
        chain.run(100)
        system.validate()


class TestBatchedRun:
    """run() must reproduce the reference step() path bit for bit."""

    @pytest.mark.parametrize("swaps", [True, False])
    @pytest.mark.parametrize("seed", [0, 7, 2018])
    def test_run_matches_step_loop(self, seed, swaps):
        reference = random_blob_system(35, seed=seed)
        batched = reference.copy()
        chain_ref = SeparationChain(
            reference, lam=3.0, gamma=2.0, swaps=swaps, seed=seed
        )
        chain_fast = SeparationChain(
            batched, lam=3.0, gamma=2.0, swaps=swaps, seed=seed
        )
        for _ in range(4000):
            chain_ref.step()
        chain_fast.run(4000)
        assert batched.colors == reference.colors
        assert chain_fast.iterations == chain_ref.iterations == 4000
        assert chain_fast.accepted_moves == chain_ref.accepted_moves
        assert chain_fast.accepted_swaps == chain_ref.accepted_swaps
        assert batched.edge_total == reference.edge_total
        assert batched.hetero_total == reference.hetero_total

    def test_mixed_run_and_step_sequences_agree(self):
        """Chunk leftovers must keep mixed run()/step() on one stream."""
        a = random_blob_system(30, seed=4)
        b = a.copy()
        chain_a = SeparationChain(a, lam=4.0, gamma=4.0, seed=12)
        chain_b = SeparationChain(b, lam=4.0, gamma=4.0, seed=12)
        chain_a.run(137)
        for _ in range(61):
            chain_a.step()
        chain_a.run(802)
        chain_b.run(1000)
        assert a.colors == b.colors
        assert chain_a.accepted_moves == chain_b.accepted_moves

    def test_annealed_run_matches_step_loop(self):
        """set_parameters mid-run must not desynchronize the fast path."""
        a = random_blob_system(30, seed=8)
        b = a.copy()
        chain_a = SeparationChain(a, lam=1.2, gamma=1.2, seed=5)
        chain_b = SeparationChain(b, lam=1.2, gamma=1.2, seed=5)
        chain_a.run(1500)
        chain_a.set_parameters(lam=5.0, gamma=6.0)
        chain_a.run(1500)
        for _ in range(1500):
            chain_b.step()
        chain_b.set_parameters(lam=5.0, gamma=6.0)
        for _ in range(1500):
            chain_b.step()
        assert a.colors == b.colors

    def test_counters_consistent_after_annealed_mixed_run(self):
        """Cross-validate incremental counters against recompute_counters
        after long mixed move/swap runs with mid-run annealing."""
        system = random_blob_system(40, seed=3)
        chain = SeparationChain(system, lam=0.8, gamma=0.7, seed=3)
        schedule = [(0.8, 0.7), (2.0, 5.0), (6.0, 0.9), (4.0, 4.0)]
        for lam, gamma in schedule:
            chain.set_parameters(lam=lam, gamma=gamma)
            chain.run(8000)
            edge_before, hetero_before = system.edge_total, system.hetero_total
            system.recompute_counters()
            assert (edge_before, hetero_before) == (
                system.edge_total,
                system.hetero_total,
            )
        assert chain.accepted_swaps > 0  # the run exercised swap moves

    def test_subclassed_rng_uses_reference_path(self):
        """Random subclasses (replay streams) must see draw-by-draw
        consumption — no chunk over-draw."""

        class CountingRandom(random.Random):
            def __init__(self, seed):
                super().__init__(seed)
                self.draws = 0

            def random(self):
                self.draws += 1
                return super().random()

        rng = CountingRandom(9)
        chain = SeparationChain(
            hexagon_system(20, seed=1), lam=3, gamma=3, seed=rng
        )
        chain.run(200)
        # At most 3 draws per step, and no draw-ahead beyond the run.
        assert chain.iterations == 200
        assert rng.draws <= 3 * 200


class TestExtremeBiases:
    """Regression: power tables must clamp instead of raising at
    construction for extreme-but-valid biases (large-γ limit probes)."""

    def test_huge_gamma_constructs_and_steps(self):
        system = hexagon_system(20, seed=1)
        chain = SeparationChain(system, lam=2, gamma=1e40, seed=1)
        chain.run(500)
        system.validate()
        assert chain.iterations == 500

    def test_tiny_gamma_constructs_and_steps(self):
        system = hexagon_system(20, seed=1)
        chain = SeparationChain(system, lam=2, gamma=1e-40, seed=1)
        chain.run(500)
        system.validate()

    def test_opposed_extremes_construct_and_step(self):
        """λ huge with γ tiny exercises the inf * 0 log-space fallback."""
        system = hexagon_system(20, seed=2)
        chain = SeparationChain(system, lam=1e40, gamma=1e-40, seed=2)
        chain.run(500)
        system.validate()
        for _ in range(100):
            chain.step()
        system.validate()

    def test_acceptance_probabilities_stay_bounded(self):
        system = hexagon_system(12, seed=4)
        chain = SeparationChain(system, lam=1e40, gamma=1e-40, seed=4)
        for src in sorted(system.colors):
            for dx, dy in NEIGHBOR_OFFSETS:
                dst = (src[0] + dx, src[1] + dy)
                if dst in system.colors:
                    if system.colors[dst] != system.colors[src]:
                        p = chain.swap_acceptance_probability(src, dst)
                        assert 0.0 <= p <= 1.0
                else:
                    p = chain.move_acceptance_probability(src, dst)
                    assert 0.0 <= p <= 1.0


class TestEvaluateHelpers:
    """The pure helpers must agree with what the step loop does."""

    @given(st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_evaluate_move_matches_counters(self, seed):
        system = random_blob_system(20, seed=seed)
        colors = system.colors
        for src in sorted(colors):
            for dx, dy in NEIGHBOR_OFFSETS:
                dst = (src[0] + dx, src[1] + dy)
                if dst in colors:
                    continue
                prob, de, dei = evaluate_move(colors, src, dst, 2.0, 3.0)
                if prob == 0.0:
                    continue
                clone = system.copy()
                e_before, h_before = clone.edge_total, clone.hetero_total
                clone.move_particle(src, dst)
                assert clone.edge_total - e_before == de
                ci = colors[src]
                # Δh = Δe - Δ(same-color edges of the moved particle)
                assert clone.hetero_total - h_before == de - dei

    @given(st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_evaluate_swap_matches_counters(self, seed):
        system = random_blob_system(20, seed=seed)
        colors = system.colors
        checked = 0
        for u in sorted(colors):
            for dx, dy in NEIGHBOR_OFFSETS:
                v = (u[0] + dx, u[1] + dy)
                if v not in colors or colors[u] == colors[v] or not u < v:
                    continue
                prob, delta_a = evaluate_swap(colors, u, v, 2.0)
                clone = system.copy()
                h_before = clone.hetero_total
                clone.swap_particles(u, v)
                assert h_before - clone.hetero_total == delta_a
                assert 0.0 < prob <= 1.0
                checked += 1
        assert checked > 0

    def test_swap_probability_symmetric(self):
        system = random_blob_system(20, seed=3)
        colors = system.colors
        for u in sorted(colors):
            for dx, dy in NEIGHBOR_OFFSETS:
                v = (u[0] + dx, u[1] + dy)
                if v in colors and colors[v] != colors[u]:
                    assert evaluate_swap(colors, u, v, 3.0) == evaluate_swap(
                        colors, v, u, 3.0
                    )

    def test_acceptance_probability_methods(self):
        system = hexagon_system(12, seed=4)
        chain = SeparationChain(system, lam=2, gamma=2, seed=4)
        for src in sorted(system.colors):
            for dx, dy in NEIGHBOR_OFFSETS:
                dst = (src[0] + dx, src[1] + dy)
                if dst in system.colors:
                    if system.colors[dst] != system.colors[src]:
                        p = chain.swap_acceptance_probability(src, dst)
                        assert 0.0 <= p <= 1.0
                else:
                    p = chain.move_acceptance_probability(src, dst)
                    assert 0.0 <= p <= 1.0


class TestDetailedBalanceOfAcceptances:
    """Metropolis ratio check: π(σ)·P(σ→τ) = π(τ)·P(τ→σ) for move pairs."""

    @given(st.integers(0, 60))
    @settings(max_examples=15, deadline=None)
    def test_move_reversibility_ratio(self, seed):
        lam, gamma = 2.5, 1.7
        system = random_blob_system(15, seed=seed)
        colors = system.colors
        for src in sorted(colors):
            for dx, dy in NEIGHBOR_OFFSETS:
                dst = (src[0] + dx, src[1] + dy)
                if dst in colors:
                    continue
                prob_fwd, _, _ = evaluate_move(colors, src, dst, lam, gamma)
                if prob_fwd == 0.0:
                    continue
                before = stationary_log_weight(system, lam, gamma)
                clone = system.copy()
                clone.move_particle(src, dst)
                prob_bwd, _, _ = evaluate_move(
                    clone.colors, dst, src, lam, gamma
                )
                assert prob_bwd > 0.0, "reversibility (Lemma 7) violated"
                after = stationary_log_weight(clone, lam, gamma)
                # π(σ) p_fwd == π(τ) p_bwd  ⇔  log π ratio == log p ratio
                assert math.isclose(
                    after - before,
                    math.log(prob_fwd) - math.log(prob_bwd),
                    abs_tol=1e-9,
                )
