"""Tests for the k-color (Potts) extension."""

import pytest

from repro.core.potts import (
    PottsSeparationChain,
    balanced_counts,
    dominant_cluster_fractions,
    interface_density,
)
from repro.system.initializers import hexagon_system
from repro.system.observables import color_counts


class TestConstruction:
    def test_balanced_factory(self):
        chain = PottsSeparationChain.balanced(30, k=3, lam=4, gamma=4, seed=0)
        assert color_counts(chain.system) == [10, 10, 10]

    def test_rejects_k_less_than_two(self):
        with pytest.raises(ValueError):
            PottsSeparationChain.balanced(10, k=1, lam=4, gamma=4)

    def test_rejects_n_less_than_k(self):
        with pytest.raises(ValueError):
            PottsSeparationChain.balanced(2, k=3, lam=4, gamma=4)

    def test_blob_start(self):
        chain = PottsSeparationChain.balanced(
            12, k=4, lam=4, gamma=4, seed=1, compact_start=False
        )
        assert chain.system.is_connected()


class TestInvariants:
    def test_three_color_run_preserves_everything(self):
        chain = PottsSeparationChain.balanced(30, k=3, lam=4, gamma=4, seed=5)
        chain.run(20_000)
        system = chain.system
        system.validate()
        assert system.is_connected()
        assert not system.has_holes()
        assert color_counts(system) == [10, 10, 10]


class TestOrderParameters:
    def test_separation_grows_dominant_clusters(self):
        chain = PottsSeparationChain.balanced(45, k=3, lam=4, gamma=5, seed=2)
        before = sum(dominant_cluster_fractions(chain.system)) / 3
        chain.run(150_000)
        after = sum(dominant_cluster_fractions(chain.system)) / 3
        assert after > before
        assert after > 0.7

    def test_interface_density_drops(self):
        chain = PottsSeparationChain.balanced(45, k=3, lam=4, gamma=5, seed=2)
        before = interface_density(chain.system)
        chain.run(150_000)
        assert interface_density(chain.system) < before

    def test_interface_density_empty_edges(self):
        from repro.system.configuration import ParticleSystem

        lonely = ParticleSystem.from_nodes([(0, 0)], [0])
        assert interface_density(lonely) == 0.0

    def test_balanced_counts(self):
        assert balanced_counts(10, 3) == [4, 3, 3]
        assert balanced_counts(9, 3) == [3, 3, 3]
