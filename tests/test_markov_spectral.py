"""Tests for spectral analysis of the chain."""

import math

import pytest

from repro.core.separation_chain import SeparationChain
from repro.markov.exact import ExactChainAnalysis
from repro.markov.spectral import (
    bottleneck_ratio,
    empirical_relaxation_time,
    gap_versus_parameters,
    spectral_summary,
)
from repro.system.initializers import hexagon_system


@pytest.fixture(scope="module")
def analysis():
    return ExactChainAnalysis(4, [2, 2], lam=2.0, gamma=3.0)


class TestSpectralSummary:
    def test_gap_in_unit_interval(self, analysis):
        summary = spectral_summary(analysis)
        assert 0.0 < summary.spectral_gap < 1.0
        assert summary.second_eigenvalue < 1.0

    def test_relaxation_inverse_of_gap(self, analysis):
        summary = spectral_summary(analysis)
        assert math.isclose(
            summary.relaxation_time, 1.0 / summary.spectral_gap
        )

    def test_mixing_bound_consistent_with_power_method(self, analysis):
        """The spectral mixing bound must dominate the power-method
        measurement of the actual mixing time."""
        summary = spectral_summary(analysis)
        measured = analysis.mixing_time_upper_bound(0.25)
        assert measured is not None
        assert summary.mixing_time_bound >= measured / 2  # factor-2 grid

    def test_epsilon_validation(self, analysis):
        with pytest.raises(ValueError):
            spectral_summary(analysis, epsilon=0.0)


class TestBottleneck:
    def test_conductance_bounds_gap(self, analysis):
        """Cheeger: gap <= 2 Φ(S) for every cut S."""
        summary = spectral_summary(analysis)
        phi = bottleneck_ratio(
            analysis, in_cut=lambda s: s.hetero_total <= 1
        )
        assert summary.spectral_gap <= 2.0 * phi + 1e-12

    def test_trivial_cut_rejected(self, analysis):
        with pytest.raises(ValueError):
            bottleneck_ratio(analysis, in_cut=lambda s: True)


class TestGapTrends:
    def test_gap_shrinks_with_gamma(self):
        """Deep separation creates bottlenecks: the gap at γ = 8 is
        smaller than at γ = 1 (the Section 5 slow-mixing intuition)."""
        grid = gap_versus_parameters(
            4, [2, 2], lambdas=[2.0], gammas=[1.0, 8.0]
        )
        assert (
            grid[(2.0, 8.0)].spectral_gap < grid[(2.0, 1.0)].spectral_gap
        )

    def test_swaps_improve_or_preserve_gap(self):
        with_swaps = gap_versus_parameters(
            4, [2, 2], lambdas=[2.0], gammas=[4.0], swaps=True
        )[(2.0, 4.0)]
        without = gap_versus_parameters(
            4, [2, 2], lambdas=[2.0], gammas=[4.0], swaps=False
        )[(2.0, 4.0)]
        assert with_swaps.spectral_gap >= without.spectral_gap - 1e-12


class TestEmpiricalRelaxation:
    def test_returns_steps_scale(self):
        system = hexagon_system(30, seed=3)
        chain = SeparationChain(system, lam=4.0, gamma=4.0, seed=3)
        tau = empirical_relaxation_time(
            chain,
            observable=lambda: float(system.hetero_total),
            samples=300,
            thinning=20,
            burn_in=5_000,
        )
        assert tau >= 20.0  # at least one thinning interval
