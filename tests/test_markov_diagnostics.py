"""Tests for Markov-chain diagnostics."""

import numpy as np
import pytest

from repro.markov.diagnostics import (
    detailed_balance_violations,
    empirical_vs_exact_tv,
    is_aperiodic,
    is_irreducible,
    stationary_from_matrix,
    total_variation_distance,
)


def two_state_chain(p=0.3, q=0.6):
    return np.array([[1 - p, p], [q, 1 - q]])


class TestTotalVariation:
    def test_identical_distributions(self):
        assert total_variation_distance([0.5, 0.5], [0.5, 0.5]) == 0.0

    def test_disjoint_distributions(self):
        assert total_variation_distance([1.0, 0.0], [0.0, 1.0]) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            total_variation_distance([1.0], [0.5, 0.5])

    def test_keyed_variant(self):
        assert empirical_vs_exact_tv({"a": 1.0}, {"b": 1.0}) == 1.0
        assert empirical_vs_exact_tv({"a": 0.5, "b": 0.5}, {"a": 0.5, "b": 0.5}) == 0.0


class TestStationary:
    def test_two_state_closed_form(self):
        p, q = 0.3, 0.6
        pi = stationary_from_matrix(two_state_chain(p, q))
        expected = np.array([q, p]) / (p + q)
        assert np.allclose(pi, expected)

    def test_requires_square(self):
        with pytest.raises(ValueError):
            stationary_from_matrix(np.ones((2, 3)))


class TestDetailedBalance:
    def test_reversible_chain_clean(self):
        m = two_state_chain()
        pi = stationary_from_matrix(m)
        assert detailed_balance_violations(m, pi) == []

    def test_nonreversible_chain_flagged(self):
        # Three-state cyclic drift: stationary but not reversible.
        m = np.array(
            [
                [0.0, 0.9, 0.1],
                [0.1, 0.0, 0.9],
                [0.9, 0.1, 0.0],
            ]
        )
        pi = np.array([1 / 3, 1 / 3, 1 / 3])
        assert len(detailed_balance_violations(m, pi)) > 0


class TestErgodicity:
    def test_irreducible_two_state(self):
        assert is_irreducible(two_state_chain())

    def test_reducible_block_matrix(self):
        m = np.eye(2)
        assert not is_irreducible(m)

    def test_aperiodic_needs_self_loop(self):
        flip = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert is_irreducible(flip)
        assert not is_aperiodic(flip)
        assert is_aperiodic(two_state_chain())
