"""Chaos suite for preemption-safe execution (mid-run durability).

The contract under test: a sweep interrupted *inside* a cell — by a
worker SIGKILL, a parent SIGTERM drain, or a preemption notice — and
then resumed produces results bit-identical to an undisturbed run at
the same snapshot cadence, with recompute bounded by the snapshot
interval.  The suite covers the state codec round trip, chain- and
kernel-level export/restore, warm restores through the engine (serial
and process backends, scalar and batch kernels, fixed and adaptive
budgets), corruption fallback to cold starts, drain manifests, and
worker heartbeat liveness.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.batch_kernel import BatchKernel
from repro.core.separation_chain import SeparationChain
from repro.experiments import parallel as parallel_mod
from repro.experiments import resilience as resilience_mod
from repro.experiments.parallel import (
    BatchRunner,
    CellTask,
    execute_cells,
)
from repro.experiments.resilience import (
    DrainInterrupt,
    FailurePolicy,
    RetryPolicy,
    clear_drain_manifest,
    drain_manifest_path,
    load_drain_manifest,
    request_drain,
    reset_drain,
    write_drain_manifest,
)
from repro.obs import Instrumentation, MetricsRegistry
from repro.system.initializers import random_blob_system
from repro.util import codec
from repro.util.serialization import (
    configuration_from_json,
    configuration_to_json,
    sweep_stale_temp_files,
)


def fresh_system(n=24, seed=3):
    """An order-preserving copy, as the worker handoff produces."""
    return configuration_from_json(
        configuration_to_json(random_blob_system(n, seed=seed),
                              sort_nodes=False)
    )


def make_tasks(count=1, n=16, steps=4000, checkpoints=(1000, 2000),
               kernel="auto", seed0=7, lam=4.0, gamma=2.0):
    system_json = configuration_to_json(
        random_blob_system(n, seed=3), sort_nodes=False
    )
    return [
        CellTask(
            lam=lam,
            gamma=gamma,
            replica=replica,
            seed=seed0 + replica,
            steps=steps,
            checkpoints=tuple(checkpoints),
            system_json=system_json,
            kernel=kernel,
            label=f"cell-{replica}",
        )
        for replica in range(count)
    ]


def result_signature(result):
    """Everything bit-identity covers: counters, snapshots, dict order."""
    return (
        result.iterations,
        result.accepted_moves,
        result.accepted_swaps,
        list(result.system.colors.items()),
        [list(snapshot.colors.items()) for snapshot in result.snapshots],
    )


RETRY = dict(
    retry=RetryPolicy(max_retries=2, backoff_base=0.0),
    failure=FailurePolicy(mode="retry"),
)


def sigkill_fault(after=2, ledger=None):
    rule = {"mode": "sigkill", "match": "*", "times": 1,
            "after_snapshots": after}
    if ledger is not None:
        rule["dir"] = str(ledger)
    return rule


# ---------------------------------------------------------------------------
# State codec frames
# ---------------------------------------------------------------------------


class TestStateCodec:
    def test_round_trip_meta_items_columns(self):
        import numpy as np

        system = random_blob_system(8, seed=3)
        blob = codec.encode_configuration(system)
        frame = codec.encode_state(
            {
                "kind": "cell-state",
                "iterations": 1234,
                "nested": {"a": [1, 2, 3]},
                "items": [blob, configuration_to_json(system)],
                "columns": {"iters": np.arange(5, dtype=np.int64)},
            }
        )
        state = codec.decode_state(frame)
        assert state["kind"] == "cell-state"
        assert state["iterations"] == 1234
        assert state["nested"] == {"a": [1, 2, 3]}
        assert state["items"][0] == blob
        assert state["items"][1] == configuration_to_json(system)
        assert list(state["columns"]["iters"]) == [0, 1, 2, 3, 4]

    @pytest.mark.parametrize("mutation", ["truncate", "flip", "garbage"])
    def test_corruption_raises_value_error(self, mutation):
        frame = bytearray(
            codec.encode_state(
                {
                    "kind": "t",
                    "items": [
                        codec.encode_configuration(
                            random_blob_system(8, seed=3)
                        )
                    ],
                }
            )
        )
        if mutation == "truncate":
            frame = frame[: len(frame) // 2]
        elif mutation == "flip":
            frame[len(frame) // 2] ^= 0xFF
        else:
            frame = bytearray(b"not a state frame at all")
        with pytest.raises(ValueError):
            codec.decode_state(bytes(frame))


# ---------------------------------------------------------------------------
# Chain-level export/restore
# ---------------------------------------------------------------------------


class TestChainStateRoundTrip:
    @pytest.mark.parametrize("backend", ["auto", "grid", "dict"])
    def test_restore_replays_bit_identical(self, backend):
        captured = {}
        reference = SeparationChain(
            fresh_system(), lam=4.0, gamma=2.0, swaps=True, seed=7,
            backend=backend,
        )

        def hook(chain):
            if chain.iterations == 2000:
                # JSON round trip, as the RBS1 frame header does.
                captured["state"] = json.loads(
                    json.dumps(chain.export_state())
                )
                captured["config"] = configuration_to_json(
                    chain.system, sort_nodes=False
                )

        reference.set_state_hook(hook, 500)
        reference.run(1000)
        reference.run(1000)
        reference.run(2000)
        assert "state" in captured

        restored = SeparationChain(
            configuration_from_json(captured["config"]),
            lam=4.0, gamma=2.0, swaps=True, seed=7, backend=backend,
        )
        restored.restore_state(captured["state"])
        assert restored.iterations == 2000
        restored.run(2000)
        assert restored.iterations == reference.iterations
        assert restored.accepted_moves == reference.accepted_moves
        assert restored.accepted_swaps == reference.accepted_swaps
        # Including dict insertion order and the RNG stream.
        assert (list(restored.system.colors.items())
                == list(reference.system.colors.items()))
        assert restored.rng.getstate() == reference.rng.getstate()

    def test_export_preserves_slot_order(self):
        """Slot order != dict order mid-run; the payload must carry it."""
        chain = SeparationChain(
            fresh_system(), lam=4.0, gamma=2.0, swaps=True, seed=7
        )
        chain.run(2000)
        state = chain.export_state()
        positions = [tuple(node) for node in state["positions"]]
        assert set(positions) == set(chain.system.colors)
        # The historical bug: rebuilding slots from dict order selects
        # different particles for the same RNG draws.  Assert the two
        # permutations really do drift apart on a mixed run.
        assert positions == list(chain._positions)

    def test_state_hook_is_trajectory_neutral(self):
        plain = SeparationChain(
            fresh_system(), lam=4.0, gamma=2.0, swaps=True, seed=7
        )
        plain.run(5000)
        hooked = SeparationChain(
            fresh_system(), lam=4.0, gamma=2.0, swaps=True, seed=7
        )
        emissions = []
        hooked.set_state_hook(
            lambda chain: emissions.append(chain.iterations), 500
        )
        for segment in (1200, 1700, 2100):
            hooked.run(segment)
        assert emissions == [500 * k for k in range(1, 11)]
        assert hooked.iterations == plain.iterations
        assert hooked.accepted_moves == plain.accepted_moves
        assert hooked.accepted_swaps == plain.accepted_swaps
        assert (list(hooked.system.colors.items())
                == list(plain.system.colors.items()))
        # Raw RNG state may differ (segmentation moves the draw-ahead
        # prefetch boundaries); the *logical* stream must not — keep
        # running and the trajectories stay locked together.
        hooked.run(3000)
        plain.run(3000)
        assert hooked.accepted_moves == plain.accepted_moves
        assert hooked.accepted_swaps == plain.accepted_swaps
        assert (list(hooked.system.colors.items())
                == list(plain.system.colors.items()))

    def test_restore_rejects_parameter_and_system_mismatch(self):
        chain = SeparationChain(fresh_system(), lam=4.0, gamma=2.0, seed=7)
        chain.run(500)
        state = chain.export_state()
        other = SeparationChain(fresh_system(), lam=2.0, gamma=2.0, seed=7)
        with pytest.raises(ValueError):
            other.restore_state(state)
        stranger = SeparationChain(
            fresh_system(seed=99), lam=4.0, gamma=2.0, seed=7
        )
        with pytest.raises(ValueError):
            stranger.restore_state(state)


# ---------------------------------------------------------------------------
# Batch kernel export/restore
# ---------------------------------------------------------------------------


class TestBatchKernelStateRoundTrip:
    def build(self):
        return BatchKernel(
            fresh_system(n=16, seed=3), lam=4.0, gamma=2.0,
            replicas=3, seed=[11, 12, 13], swaps=True,
        )

    @staticmethod
    def configurations(kernel):
        return [kernel.export_system(r) for r in range(kernel.R)]

    def test_restore_replays_bit_identical(self):
        reference = self.build()
        reference.run(1000)
        # export_state hands out live array views; the codec frame
        # freezes them — the same handoff the worker snapshot does.
        frame = codec.encode_state(reference.export_state())
        reference.run(1500)

        restored = self.build()
        restored.restore_state(codec.decode_state(frame))
        assert list(restored.iters) == [1000, 1000, 1000]
        restored.run(1500)
        import numpy as np

        assert np.array_equal(restored.iters, reference.iters)
        assert np.array_equal(restored.acc_moves, reference.acc_moves)
        assert np.array_equal(restored.acc_swaps, reference.acc_swaps)
        for left, right in zip(
            self.configurations(restored), self.configurations(reference)
        ):
            assert list(left.colors.items()) == list(right.colors.items())

    def test_vector_run_matches_scalar_run(self):
        import numpy as np

        scalar = self.build()
        scalar.run(800)
        vector = self.build()
        vector.run(np.full(3, 800, dtype=np.int64))
        assert np.array_equal(scalar.iters, vector.iters)
        assert np.array_equal(scalar.acc_moves, vector.acc_moves)
        for left, right in zip(
            self.configurations(scalar), self.configurations(vector)
        ):
            assert list(left.colors.items()) == list(right.colors.items())

    def test_vector_run_advances_replicas_unevenly(self):
        import numpy as np

        kernel = self.build()
        kernel.run(np.array([100, 250, 0], dtype=np.int64))
        assert list(kernel.iters) == [100, 250, 0]


# ---------------------------------------------------------------------------
# Engine warm restores
# ---------------------------------------------------------------------------


class TestWarmRestore:
    def test_serial_scalar_bit_identical(self, tmp_path):
        reference = execute_cells(
            make_tasks(), backend="serial",
            checkpoint_dir=tmp_path / "ref", state_every=500,
        )
        restored = execute_cells(
            make_tasks(), backend="serial",
            checkpoint_dir=tmp_path / "int", state_every=500,
            fault_spec=sigkill_fault(), **RETRY,
        )
        assert restored[0].restored_from is not None
        assert result_signature(restored[0]) == result_signature(reference[0])
        # The state/heartbeat files are cleaned up after the commit.
        assert not list((tmp_path / "int").glob("*.state.bin"))
        assert not list((tmp_path / "int").glob("*.hb"))

    def test_serial_scalar_without_checkpoints(self, tmp_path):
        """Monolithic cells snapshot mid-run (the segmented fast path)."""
        reference = execute_cells(
            make_tasks(checkpoints=()), backend="serial",
            checkpoint_dir=tmp_path / "ref", state_every=500,
        )
        restored = execute_cells(
            make_tasks(checkpoints=()), backend="serial",
            checkpoint_dir=tmp_path / "int", state_every=500,
            fault_spec=sigkill_fault(), **RETRY,
        )
        assert restored[0].restored_from is not None
        # Recompute is bounded by the snapshot interval: the restore
        # point is within one interval of the kill point.
        assert restored[0].restored_from >= 500
        assert result_signature(restored[0]) == result_signature(reference[0])

    def test_batch_group_bit_identical(self, tmp_path):
        tasks = make_tasks(count=3, kernel="batch", steps=3000, seed0=40)
        reference = BatchRunner(
            backend="serial", checkpoint_dir=tmp_path / "ref",
            state_every=500,
        ).run(tasks)
        restored = BatchRunner(
            backend="serial", checkpoint_dir=tmp_path / "int",
            state_every=500, fault_spec=sigkill_fault(), **RETRY,
        ).run(tasks)
        assert any(r.restored_from is not None for r in restored)
        for left, right in zip(restored, reference):
            assert result_signature(left) == result_signature(right)

    def test_process_backend_survives_real_sigkill(self, tmp_path):
        tasks = make_tasks(count=2, checkpoints=(), seed0=60)
        reference = execute_cells(
            tasks, backend="serial",
            checkpoint_dir=tmp_path / "ref", state_every=500,
        )
        restored = execute_cells(
            tasks, backend="process", workers=2,
            checkpoint_dir=tmp_path / "int", state_every=500,
            fault_spec=sigkill_fault(ledger=tmp_path / "ledger"), **RETRY,
        )
        assert any(r.restored_from is not None for r in restored)
        for left, right in zip(restored, reference):
            assert result_signature(left) == result_signature(right)

    def test_corrupt_state_file_falls_back_to_cold_start(self, tmp_path):
        tasks = make_tasks()
        reference = execute_cells(
            tasks, backend="serial",
            checkpoint_dir=tmp_path / "ref", state_every=500,
        )
        directory = tmp_path / "int"
        directory.mkdir()
        state_file = directory / f"cell-{tasks[0].key()}.state.bin"
        state_file.write_bytes(b"garbage, not an RBS1 frame")
        with pytest.warns(RuntimeWarning, match="unusable state snapshot"):
            restored = execute_cells(
                tasks, backend="serial", checkpoint_dir=directory,
                state_every=500,
            )
        # Cold start: correct result, no warm-restore provenance.
        assert restored[0].restored_from is None
        assert result_signature(restored[0]) == result_signature(reference[0])

    def test_warm_restore_counted_and_reported(self, tmp_path):
        metrics = MetricsRegistry()
        obs = Instrumentation(metrics=metrics)
        # seed0 distinct from every other sigkill test: the in-process
        # fault ledger is keyed by (mode, cell key), so reusing a key
        # would find the fault already claimed and never fire.
        execute_cells(
            make_tasks(seed0=120), backend="serial",
            checkpoint_dir=tmp_path, state_every=500,
            fault_spec=sigkill_fault(), obs=obs, **RETRY,
        )
        snapshot = metrics.snapshot()
        assert snapshot["counters"].get("engine.warm_restores", 0) >= 1
        assert snapshot["counters"].get("engine.state_snapshots", 0) >= 1
        rows = snapshot["series"].get("engine.cells", [])
        assert any(row.get("restored_from") is not None for row in rows)

    def test_adaptive_scalar_bit_identical(self, tmp_path):
        from repro.obs import StopCondition

        stop = StopCondition(
            ess_target=5.0, geweke_max=50.0, min_iterations=2000
        )
        tasks = make_tasks(n=32, steps=300_000, checkpoints=(),
                           gamma=4.0)
        reference = execute_cells(
            tasks, backend="serial", checkpoint_dir=tmp_path / "ref",
            state_every=2000, adaptive=stop,
        )
        restored = execute_cells(
            tasks, backend="serial", checkpoint_dir=tmp_path / "int",
            state_every=2000, adaptive=stop,
            fault_spec=sigkill_fault(), **RETRY,
        )
        assert restored[0].restored_from is not None
        assert restored[0].stop_reason == reference[0].stop_reason
        assert restored[0].ess_at_stop == reference[0].ess_at_stop
        assert result_signature(restored[0]) == result_signature(reference[0])


# ---------------------------------------------------------------------------
# Graceful drain
# ---------------------------------------------------------------------------


class TestDrain:
    def test_preempt_fault_drains_and_resume_completes(self, tmp_path):
        tasks = make_tasks(count=2, checkpoints=(), seed0=80)
        reference = execute_cells(
            tasks, backend="serial",
            checkpoint_dir=tmp_path / "ref", state_every=500,
        )
        directory = tmp_path / "int"
        with pytest.raises(DrainInterrupt) as excinfo:
            execute_cells(
                tasks, backend="serial", checkpoint_dir=directory,
                state_every=500,
                fault_spec={"mode": "preempt", "match": "*", "times": 1,
                            "after_snapshots": 3},
            )
        assert excinfo.value.pending
        manifest = load_drain_manifest(directory)
        assert manifest is not None
        assert manifest["pending"] == excinfo.value.pending
        # The drained cell parked on a durable snapshot.
        assert list(directory.glob("*.state.bin"))

        resumed = execute_cells(
            tasks, backend="serial", checkpoint_dir=directory,
            state_every=500, resume=True,
        )
        assert any(r.restored_from is not None for r in resumed)
        for left, right in zip(resumed, reference):
            assert result_signature(left) == result_signature(right)
        # A clean completion clears the manifest.
        assert load_drain_manifest(directory) is None

    def test_drain_counted_in_metrics(self, tmp_path):
        metrics = MetricsRegistry()
        obs = Instrumentation(metrics=metrics)
        with pytest.raises(DrainInterrupt):
            execute_cells(
                make_tasks(checkpoints=()), backend="serial",
                checkpoint_dir=tmp_path, state_every=500, obs=obs,
                fault_spec={"mode": "preempt", "match": "*", "times": 1,
                            "after_snapshots": 1},
            )
        assert metrics.snapshot()["counters"].get("engine.drains", 0) >= 1

    def test_manifest_write_load_clear(self, tmp_path):
        write_drain_manifest(tmp_path, ["abc", "def"], 3)
        manifest = load_drain_manifest(tmp_path)
        assert manifest["pending"] == ["abc", "def"]
        assert manifest["completed"] == 3
        assert manifest["reason"] == "signal"
        assert drain_manifest_path(tmp_path).exists()
        clear_drain_manifest(tmp_path)
        assert load_drain_manifest(tmp_path) is None
        clear_drain_manifest(tmp_path)  # idempotent

    def test_request_drain_is_process_wide_and_resettable(self):
        reset_drain()
        try:
            assert not resilience_mod.drain_requested()
            request_drain()
            assert resilience_mod.drain_requested()
        finally:
            reset_drain()
        assert not resilience_mod.drain_requested()


# ---------------------------------------------------------------------------
# SIGTERM end-to-end (subprocess: real signal against a live sweep)
# ---------------------------------------------------------------------------


SIGTERM_SCRIPT = """
import sys
from repro.experiments.parallel import CellTask, execute_cells
from repro.system.initializers import random_blob_system
from repro.util.serialization import configuration_to_json

base = configuration_to_json(random_blob_system(48, seed=3),
                             sort_nodes=False)
tasks = [CellTask(lam=4.0, gamma=2.0, replica=r, seed=7 + r,
                  steps=500_000_000, system_json=base, label=f"c{r}")
         for r in range(2)]
print("READY", flush=True)
execute_cells(tasks, backend="serial", checkpoint_dir=sys.argv[1],
              state_every=100_000)
"""


class TestSigterm:
    def test_sigterm_drains_serial_sweep(self, tmp_path):
        env = dict(os.environ)
        src = str(Path(parallel_mod.__file__).resolve().parents[2])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-c", SIGTERM_SCRIPT, str(tmp_path)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            text=True,
        )
        try:
            assert process.stdout.readline().strip() == "READY"
            time.sleep(3.0)
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        # DrainInterrupt propagated out of execute_cells; the state
        # snapshot and the manifest are on disk for --resume.
        assert process.returncode != 0
        manifest = load_drain_manifest(tmp_path)
        assert manifest is not None
        assert manifest["pending"]
        assert list(Path(tmp_path).glob("*.state.bin"))


# ---------------------------------------------------------------------------
# Worker liveness
# ---------------------------------------------------------------------------


class TestHeartbeat:
    def test_hang_before_cell_body_is_detected(self, tmp_path, monkeypatch):
        metrics = MetricsRegistry()
        obs = Instrumentation(metrics=metrics)
        original = resilience_mod.ResilientExecutor.__init__

        def tightened(self, *args, **kwargs):
            kwargs["heartbeat_grace"] = 2.0
            return original(self, *args, **kwargs)

        monkeypatch.setattr(
            resilience_mod.ResilientExecutor, "__init__", tightened
        )
        results = execute_cells(
            make_tasks(count=1, steps=2000, checkpoints=()),
            backend="process", workers=1,
            checkpoint_dir=tmp_path, state_every=500,
            fault_spec={"mode": "hang", "match": "*", "times": 1,
                        "hang_seconds": 6.0,
                        "dir": str(tmp_path / "ledger")},
            obs=obs,
            retry=RetryPolicy(max_retries=1, task_timeout=30.0,
                              backoff_base=0.0),
            failure=FailurePolicy(mode="retry"),
        )
        counters = metrics.snapshot()["counters"]
        assert counters.get("worker.heartbeat_miss", 0) >= 1
        assert results[0].iterations == 2000

    def test_heartbeat_files_swept_on_start(self, tmp_path):
        (tmp_path / "cell-deadbeef.hb").write_text("123")
        assert sweep_stale_temp_files(tmp_path) == 1
        assert not list(tmp_path.glob("*.hb"))

    def test_orphaned_state_swept_only_with_checkpoint(self, tmp_path):
        (tmp_path / "cell-aaaa.state.bin").write_bytes(b"x")
        (tmp_path / "cell-bbbb.state.bin").write_bytes(b"x")
        (tmp_path / "cell-bbbb.bin").write_bytes(b"x")
        removed = sweep_stale_temp_files(tmp_path)
        assert removed == 1
        # The live resume candidate survives; the superseded one went.
        assert (tmp_path / "cell-aaaa.state.bin").exists()
        assert not (tmp_path / "cell-bbbb.state.bin").exists()
