"""Tests for locality enforcement in the distributed layer."""

import pytest

from repro.distributed.local_view import LocalityViolation, LocalView
from repro.system.initializers import hexagon_system


@pytest.fixture
def view():
    system = hexagon_system(20, seed=0)
    location = next(iter(sorted(system.colors)))
    from repro.lattice.triangular import neighbors

    target = neighbors(location)[0]
    return LocalView(system.colors, location, target), system, location, target


class TestConstruction:
    def test_requires_occupied_location(self):
        system = hexagon_system(5, seed=0)
        with pytest.raises(ValueError):
            LocalView(system.colors, (99, 99), (100, 99))

    def test_requires_adjacent_target(self):
        system = hexagon_system(5, seed=0)
        location = next(iter(system.colors))
        with pytest.raises(ValueError):
            LocalView(system.colors, location, (location[0] + 5, location[1]))


class TestReads:
    def test_own_color_readable(self, view):
        v, system, location, _ = view
        assert v.my_color() == system.colors[location]

    def test_neighborhood_readable(self, view):
        v, system, location, target = view
        from repro.lattice.triangular import neighbors

        for node in neighbors(location) + neighbors(target):
            v.is_occupied(node)  # must not raise
            v.color_of(node)

    def test_far_read_raises(self, view):
        v, _, _, _ = view
        with pytest.raises(LocalityViolation):
            v.is_occupied((50, 50))
        with pytest.raises(LocalityViolation):
            v.color_of((50, 50))

    def test_neighbor_scan_only_own_nodes(self, view):
        v, system, location, target = view
        v.occupied_neighbors(location)
        v.occupied_neighbors(target)
        from repro.lattice.triangular import neighbors

        outside = neighbors(location)[2]
        if outside != target:
            with pytest.raises(LocalityViolation):
                v.occupied_neighbors(outside)

    def test_published_counts_need_occupied_node(self, view):
        v, system, location, target = view
        from repro.lattice.triangular import neighbors

        empty_neighbor = None
        for node in neighbors(location):
            if node not in system.colors:
                empty_neighbor = node
                break
        if empty_neighbor is not None:
            with pytest.raises(LocalityViolation):
                v.published_neighbor_counts(empty_neighbor)

    def test_published_counts_content(self, view):
        v, system, location, target = view
        total, per_color = v.published_neighbor_counts(location)
        expected_total, expected_by_color = system.neighbor_counts(location)
        assert total == expected_total
        for color, count in per_color.items():
            assert expected_by_color[color] == count
