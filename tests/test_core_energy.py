"""Tests for the local-energy framework and the generic energy chain."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.energy import (
    CompressionEnergy,
    EnergyChain,
    InteractionEnergy,
    LocalEnergy,
    SeparationEnergy,
)
from repro.core.separation_chain import SeparationChain
from repro.system.initializers import hexagon_system, random_blob_system
from repro.system.observables import color_counts


class TestLocalEnergy:
    def test_requires_square_symmetric_costs(self):
        with pytest.raises(ValueError):
            LocalEnergy([[0.0, 1.0]], perimeter_cost=0.0)
        with pytest.raises(ValueError):
            LocalEnergy([[0.0, 1.0], [2.0, 0.0]], perimeter_cost=0.0)

    def test_total_energy_matches_lemma9_exponent(self):
        """SeparationEnergy's total equals p·ln(λγ) + h·ln(γ)."""
        lam, gamma = 3.0, 2.0
        energy = SeparationEnergy(lam, gamma)
        for seed in range(5):
            system = random_blob_system(15, seed=seed)
            expected = system.perimeter() * math.log(lam * gamma) + (
                system.hetero_total * math.log(gamma)
            )
            assert math.isclose(energy.total(system), expected)

    def test_compression_energy_is_perimeter_only(self):
        energy = CompressionEnergy(lam=4.0)
        system = random_blob_system(12, seed=1)
        assert math.isclose(
            energy.total(system), system.perimeter() * math.log(4.0)
        )

    def test_interaction_energy_validates(self):
        with pytest.raises(ValueError):
            InteractionEnergy(0.0, [[1.0]])
        with pytest.raises(ValueError):
            InteractionEnergy(2.0, [[1.0, -1.0], [-1.0, 1.0]])

    def test_interaction_reproduces_separation_energy(self):
        """Cross-color affinity 1/γ at λ' = λγ gives cost ln γ per
        heterogeneous edge and ln(λγ) per perimeter unit — exactly
        SeparationEnergy."""
        lam, gamma = 3.0, 2.5
        separation = SeparationEnergy(lam, gamma)
        interaction = InteractionEnergy(
            lam * gamma, [[1.0, 1.0 / gamma], [1.0 / gamma, 1.0]]
        )
        for seed in range(4):
            system = random_blob_system(14, seed=seed)
            assert math.isclose(
                interaction.total(system), separation.total(system),
                abs_tol=1e-9,
            )


class TestDeltas:
    """move_delta / swap_delta must match total-energy differences."""

    @given(st.integers(0, 80))
    @settings(max_examples=20, deadline=None)
    def test_move_delta_matches_total_difference(self, seed):
        from repro.core.separation_chain import evaluate_move
        from repro.lattice.triangular import (
            NEIGHBOR_OFFSETS,
            direction_between,
        )
        from repro.core.separation_chain import RING_OFFSETS

        energy = InteractionEnergy(
            2.0, [[3.0, 0.5], [0.5, 1.5]]
        )
        system = random_blob_system(14, seed=seed)
        colors = system.colors
        for src in sorted(colors):
            for dx, dy in NEIGHBOR_OFFSETS:
                dst = (src[0] + dx, src[1] + dy)
                if dst in colors:
                    continue
                prob, _, _ = evaluate_move(colors, src, dst, 2.0, 2.0)
                if prob == 0.0:
                    continue  # invalid move: delta undefined (would hole)
                d = direction_between(src, dst)
                ring_colors = [
                    colors.get((src[0] + rdx, src[1] + rdy))
                    for rdx, rdy in RING_OFFSETS[d]
                ]
                delta = energy.move_delta(colors[src], ring_colors)
                before = energy.total(system)
                clone = system.copy()
                clone.move_particle(src, dst)
                after = energy.total(clone)
                assert math.isclose(delta, after - before, abs_tol=1e-9)

    @given(st.integers(0, 80))
    @settings(max_examples=20, deadline=None)
    def test_swap_delta_matches_total_difference(self, seed):
        from repro.lattice.triangular import (
            NEIGHBOR_OFFSETS,
            direction_between,
        )
        from repro.core.separation_chain import RING_OFFSETS

        energy = InteractionEnergy(2.0, [[4.0, 0.7], [0.7, 2.0]])
        system = random_blob_system(14, seed=seed)
        colors = system.colors
        for src in sorted(colors):
            for dx, dy in NEIGHBOR_OFFSETS:
                dst = (src[0] + dx, src[1] + dy)
                if colors.get(dst) is None or colors[dst] == colors[src]:
                    continue
                d = direction_between(src, dst)
                ring_colors = [
                    colors.get((src[0] + rdx, src[1] + rdy))
                    for rdx, rdy in RING_OFFSETS[d]
                ]
                delta = energy.swap_delta(colors[src], colors[dst], ring_colors)
                before = energy.total(system)
                clone = system.copy()
                clone.swap_particles(src, dst)
                after = energy.total(clone)
                assert math.isclose(delta, after - before, abs_tol=1e-9)


class TestEnergyChain:
    def test_rejects_color_mismatch(self):
        system = hexagon_system(9, num_colors=3, seed=0)
        with pytest.raises(ValueError):
            EnergyChain(system, SeparationEnergy(2.0, 2.0, num_colors=2))

    def test_matches_separation_chain_stationary_distribution(self):
        """With SeparationEnergy, EnergyChain targets the same π as
        Algorithm 1: its empirical distribution converges to the exact
        Lemma 9 distribution.  (Step-for-step trajectory equality is not
        expected: the two compute acceptance thresholds in power vs log
        space, so marginal float comparisons can differ.)"""
        from repro.markov.diagnostics import (
            empirical_distribution,
            empirical_vs_exact_tv,
        )
        from repro.markov.exact import ExactChainAnalysis

        analysis = ExactChainAnalysis(4, [2, 2], lam=2.0, gamma=3.0)
        state = analysis.states[0].copy()
        chain = EnergyChain(state, SeparationEnergy(2.0, 3.0), seed=99)
        empirical = empirical_distribution(
            chain,
            state_index=lambda: state.canonical_key(),
            steps=120_000,
            record_every=4,
        )
        exact = {
            s.canonical_key(): float(p)
            for s, p in zip(analysis.states, analysis.pi)
        }
        assert empirical_vs_exact_tv(empirical, exact) < 0.08

    def test_invariants_with_interaction_energy(self):
        system = hexagon_system(30, num_colors=3, seed=7)
        affinity = [
            [4.0, 0.5, 1.0],
            [0.5, 4.0, 2.0],
            [1.0, 2.0, 4.0],
        ]
        chain = EnergyChain(system, InteractionEnergy(3.0, affinity), seed=7)
        chain.run(30_000)
        system.validate()
        assert system.is_connected()
        assert not system.has_holes()
        assert color_counts(system) == color_counts(hexagon_system(30, num_colors=3, seed=7))

    def test_repulsive_cross_affinity_separates_strongly(self):
        """Making opposite colors actively repel (affinity < 1) drives
        the interface length below the plain separation chain's."""
        base = hexagon_system(48, seed=8)
        attract_only = base.copy()
        EnergyChain(
            attract_only, InteractionEnergy(4.0, [[4.0, 1.0], [1.0, 4.0]]),
            seed=8,
        ).run(100_000)
        repel = base.copy()
        EnergyChain(
            repel, InteractionEnergy(4.0, [[4.0, 0.25], [0.25, 4.0]]),
            seed=8,
        ).run(100_000)
        assert repel.hetero_total <= attract_only.hetero_total

    def test_run_validation_and_rates(self):
        chain = EnergyChain(
            hexagon_system(10, seed=0), SeparationEnergy(2, 2), seed=0
        )
        with pytest.raises(ValueError):
            chain.run(-1)
        chain.run(500)
        assert 0.0 <= chain.acceptance_rate() <= 1.0
        assert chain.log_stationary_weight() == -chain.energy.total(chain.system)
