"""Tests for generic chain runners and the Metropolis filter."""

import math

import pytest

from repro.core.separation_chain import SeparationChain
from repro.markov.chain import MarkovChainProtocol, run_chunked, sample_observable
from repro.markov.metropolis import metropolis_acceptance, metropolis_step
from repro.system.initializers import hexagon_system
from repro.util.rng import make_rng


class TestProtocol:
    def test_separation_chain_satisfies_protocol(self):
        chain = SeparationChain(hexagon_system(5, seed=0), lam=2, gamma=2)
        assert isinstance(chain, MarkovChainProtocol)


class TestSampleObservable:
    def test_collects_expected_count(self):
        system = hexagon_system(15, seed=0)
        chain = SeparationChain(system, lam=2, gamma=2, seed=0)
        values = sample_observable(
            chain, lambda: system.perimeter(), samples=10, thinning=50, burn_in=100
        )
        assert len(values) == 10
        assert chain.iterations == 100 + 10 * 50

    def test_validates_arguments(self):
        chain = SeparationChain(hexagon_system(5, seed=0), lam=2, gamma=2)
        with pytest.raises(ValueError):
            sample_observable(chain, lambda: 0, samples=-1, thinning=1)
        with pytest.raises(ValueError):
            sample_observable(chain, lambda: 0, samples=1, thinning=0)
        with pytest.raises(ValueError):
            sample_observable(chain, lambda: 0, samples=1, thinning=1, burn_in=-1)


class TestRunChunked:
    def test_yields_cumulative_counts(self):
        chain = SeparationChain(hexagon_system(10, seed=0), lam=2, gamma=2, seed=0)
        marks = list(run_chunked(chain, total_steps=103, chunks=4))
        assert marks == [26, 52, 78, 103]
        assert chain.iterations == 103

    def test_validates(self):
        chain = SeparationChain(hexagon_system(5, seed=0), lam=2, gamma=2)
        with pytest.raises(ValueError):
            list(run_chunked(chain, -1, 2))
        with pytest.raises(ValueError):
            list(run_chunked(chain, 10, 0))


class TestMetropolis:
    def test_acceptance_uphill_is_one(self):
        assert metropolis_acceptance(0.0, 5.0) == 1.0

    def test_acceptance_downhill_is_exponential(self):
        assert math.isclose(metropolis_acceptance(1.0, 0.0), math.exp(-1.0))

    def test_step_targets_distribution(self):
        """A two-state Metropolis walk visits states proportionally to
        their weights."""
        log_weights = {0: 0.0, 1: math.log(3.0)}
        rng = make_rng(7)
        state = 0
        visits = [0, 0]
        for _ in range(30_000):
            state = metropolis_step(
                state,
                propose=lambda s: 1 - s,
                log_weight=lambda s: log_weights[s],
                seed=rng,
            )
            visits[state] += 1
        ratio = visits[1] / visits[0]
        assert 2.5 < ratio < 3.5
