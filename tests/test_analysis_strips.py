"""Tests for the strip decomposition (Theorem 16 machinery)."""

import pytest

from repro.analysis.strips import (
    chernoff_surplus_bound,
    max_surplus_summary,
    strip_color_surpluses,
    strip_decomposition,
    surplus_profile,
)
from repro.system.configuration import ParticleSystem
from repro.system.initializers import checkerboard_system, separated_system


def sorted_line(n, colors):
    return ParticleSystem.from_nodes([(i, 0) for i in range(n)], colors)


class TestDecomposition:
    def test_strips_cover_all_particles(self):
        system = separated_system(49)
        strips = strip_decomposition(system, width=2)
        assert sum(strip.size for strip in strips) == 49

    def test_width_one_line(self):
        system = sorted_line(6, [0, 0, 0, 1, 1, 1])
        strips = strip_decomposition(system, width=1)
        assert len(strips) == 6
        assert [s.count_color1 for s in strips] == [0, 0, 0, 1, 1, 1]

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            strip_decomposition(sorted_line(3, [0, 0, 1]), width=0)

    def test_fraction_property(self):
        system = sorted_line(4, [0, 1, 0, 1])
        for strip in strip_decomposition(system, width=2):
            assert strip.fraction_color1 == 0.5


class TestSurpluses:
    def test_sorted_line_has_large_surplus(self):
        system = sorted_line(20, [0] * 10 + [1] * 10)
        surpluses = strip_color_surpluses(system, width=10)
        assert max(surpluses) == 5.0  # a pure strip of 10 vs fair share 5

    def test_alternating_has_zero_surplus(self):
        system = sorted_line(20, [0, 1] * 10)
        surpluses = strip_color_surpluses(system, width=2)
        assert max(surpluses) == 0.0


class TestChernoff:
    def test_bound_grows_with_strip_size(self):
        small = chernoff_surplus_bound(10, 100, 50, 0.01)
        large = chernoff_surplus_bound(40, 100, 50, 0.01)
        assert large > small

    def test_bound_grows_with_confidence(self):
        loose = chernoff_surplus_bound(20, 100, 50, 0.1)
        tight = chernoff_surplus_bound(20, 100, 50, 0.001)
        assert tight > loose

    def test_validates(self):
        with pytest.raises(ValueError):
            chernoff_surplus_bound(0, 10, 5, 0.1)
        with pytest.raises(ValueError):
            chernoff_surplus_bound(5, 10, 5, 1.5)
        with pytest.raises(ValueError):
            chernoff_surplus_bound(5, 10, 50, 0.1)


class TestSummary:
    def test_separated_exceeds_envelope(self):
        """A cleanly separated configuration has a strip surplus far
        beyond what random coloring allows — the Theorem 14 side."""
        system = separated_system(100)
        summary = max_surplus_summary(system, width=3)
        assert summary.exceeds_envelope

    def test_checkerboard_within_envelope(self):
        """A perfectly mixed coloring stays within the Chernoff
        envelope — the Theorem 16 side."""
        system = checkerboard_system(100)
        summary = max_surplus_summary(system, width=3)
        assert not summary.exceeds_envelope

    def test_profile_keys(self):
        system = separated_system(49)
        profile = surplus_profile(system, widths=(2, 4))
        assert set(profile) == {2, 4}
