"""Tests for the Figure 2 / Figure 3 regenerators and lemma checks."""

import math

import pytest

from repro.experiments.figure2 import (
    PAPER_CHECKPOINTS,
    Figure2Result,
    run_figure2,
    scaled_checkpoints,
)
from repro.experiments.figure3 import (
    PHASE_ABBREVIATIONS,
    run_figure3,
)
from repro.experiments.lemmas import (
    check_lemma1_counting_bound,
    check_lemma2_constructive_bound,
    perimeter_census,
    smallest_valid_nu,
)


class TestFigure2:
    def test_paper_checkpoints(self):
        assert PAPER_CHECKPOINTS == (0, 50_000, 1_050_000, 17_050_000, 68_250_000)

    def test_scaled_checkpoints_dedup(self):
        scaled = scaled_checkpoints(1e-6)
        assert scaled[0] == 0
        assert len(scaled) == len(set(scaled))

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            scaled_checkpoints(0)

    def test_small_run_structure(self):
        result = run_figure2(n=40, scale=0.001, seed=1)
        assert isinstance(result, Figure2Result)
        assert len(result.rows) == len(result.checkpoints) == len(result.phases)
        assert len(result.snapshots) == len(result.checkpoints)
        assert "iteration" in result.summary_table()

    def test_separation_improves_over_run(self):
        result = run_figure2(n=60, scale=0.005, seed=2)
        first = result.rows[0]["hetero_density"]
        last = result.rows[-1]["hetero_density"]
        assert last < first

    def test_compression_improves_over_run(self):
        result = run_figure2(n=60, scale=0.005, seed=2)
        assert result.rows[-1]["alpha"] < result.rows[0]["alpha"] + 0.01

    def test_final_phase_is_compressed_separated(self):
        result = run_figure2(n=60, scale=0.01, seed=3)
        assert result.phases[-1] == "compressed-separated"

    def test_custom_checkpoints(self):
        result = run_figure2(n=30, checkpoints=[0, 500, 1000], seed=1)
        assert result.checkpoints == [0, 500, 1000]


class TestFigure3:
    @pytest.fixture(scope="class")
    def small_grid(self):
        return run_figure3(
            n=50,
            lambdas=(1.0, 4.0),
            gammas=(1.0, 4.0),
            iterations=120_000,
            seed=4,
        )

    def test_grid_complete(self, small_grid):
        assert set(small_grid.phases) == {
            (1.0, 1.0), (1.0, 4.0), (4.0, 1.0), (4.0, 4.0),
        }

    def test_four_corner_phases(self, small_grid):
        """The corners land in the phases the paper's Figure 3 shows."""
        assert small_grid.phase_of(4.0, 4.0) == "compressed-separated"
        assert small_grid.phase_of(4.0, 1.0) == "compressed-integrated"
        assert small_grid.phase_of(1.0, 1.0) == "expanded-integrated"

    def test_grid_table_renders(self, small_grid):
        table = small_grid.grid_table()
        assert "lambda\\gamma" in table
        for abbreviation in set(
            PHASE_ABBREVIATIONS[p] for p in small_grid.phases.values()
        ):
            assert abbreviation in table

    def test_metrics_recorded(self, small_grid):
        metrics = small_grid.metrics[(4.0, 4.0)]
        assert metrics["alpha"] >= 1.0
        assert 0.0 <= metrics["hetero_density"] <= 1.0

    def test_replicas_majority_vote(self):
        result = run_figure3(
            n=40,
            lambdas=(4.0,),
            gammas=(4.0,),
            iterations=60_000,
            seed=4,
            replicas=3,
        )
        assert result.phase_of(4.0, 4.0) == "compressed-separated"

    def test_replicas_validation(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            run_figure3(n=10, iterations=10, replicas=0)


class TestLemmaChecks:
    def test_lemma1_holds_at_generous_nu(self):
        check = check_lemma1_counting_bound(6, nu=3.5)
        assert check.holds

    def test_lemma1_fails_at_tiny_nu(self):
        check = check_lemma1_counting_bound(6, nu=1.01)
        assert not check.holds
        assert check.violations

    def test_lemma1_census_totals(self):
        census = perimeter_census(5)
        assert sum(census.values()) == 186

    def test_smallest_valid_nu_below_paper_constant(self):
        """At small n the ν^k bound already holds for ν well below the
        asymptotic 2+√2 ≈ 3.41."""
        nu = smallest_valid_nu(6)
        assert nu <= 2 + math.sqrt(2)

    @pytest.mark.parametrize("n", [1, 2, 7, 19, 50, 100, 1000])
    def test_lemma2_constructive_bound(self, n):
        check = check_lemma2_constructive_bound(n)
        assert check.holds, (
            f"n={n}: constructed {check.constructed_perimeter}, "
            f"minimum {check.minimum}, bound {check.bound}"
        )

    def test_lemma1_validates_nu(self):
        with pytest.raises(ValueError):
            check_lemma1_counting_bound(4, nu=0.0)
