"""Tests for the Ising model and high-temperature expansion."""

import math
from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ising import (
    coloring_weight,
    even_edge_subsets,
    expected_heterogeneous_edges,
    fixed_counts_color_distribution,
    gamma_to_coupling,
    ising_partition_function,
    ising_partition_function_high_temperature,
)

TRIANGLE = [(0, 1), (1, 2), (0, 2)]
SQUARE = [(0, 1), (1, 2), (2, 3), (0, 3)]
TRIANGLE_WITH_TAIL = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]


class TestCoupling:
    def test_gamma_one_is_zero_coupling(self):
        assert gamma_to_coupling(1.0) == 0.0

    def test_gamma_above_one_ferromagnetic(self):
        assert gamma_to_coupling(4.0) > 0

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            gamma_to_coupling(0.0)


class TestPartitionFunctions:
    def test_single_edge_closed_form(self):
        # Z = 2 e^J + 2 e^{-J} per spin pair.
        j = 0.7
        z = ising_partition_function(2, [(0, 1)], j)
        assert math.isclose(z, 2 * math.exp(j) + 2 * math.exp(-j))

    def test_zero_coupling_counts_states(self):
        assert ising_partition_function(4, SQUARE, 0.0) == 16.0

    @given(st.floats(min_value=-1.5, max_value=1.5))
    @settings(max_examples=25, deadline=None)
    def test_high_temperature_identity_triangle(self, j):
        z_direct = ising_partition_function(3, TRIANGLE, j)
        z_ht = ising_partition_function_high_temperature(3, TRIANGLE, j)
        assert math.isclose(z_direct, z_ht, rel_tol=1e-10)

    @given(st.floats(min_value=-1.0, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_high_temperature_identity_with_bridges(self, j):
        z_direct = ising_partition_function(5, TRIANGLE_WITH_TAIL, j)
        z_ht = ising_partition_function_high_temperature(
            5, TRIANGLE_WITH_TAIL, j
        )
        assert math.isclose(z_direct, z_ht, rel_tol=1e-10)

    def test_high_temperature_identity_on_lattice_patch(self):
        """HT identity on an actual triangular-lattice disk."""
        from repro.lattice.geometry import disk
        from repro.lattice.triangular import edges_of

        nodes = sorted(disk((0, 0), 1))
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[a], index[b]) for a, b in edges_of(nodes)]
        for j in (0.2, 0.8):
            z_direct = ising_partition_function(len(nodes), edges, j)
            z_ht = ising_partition_function_high_temperature(
                len(nodes), edges, j
            )
            assert math.isclose(z_direct, z_ht, rel_tol=1e-10)

    def test_size_guard(self):
        with pytest.raises(ValueError):
            ising_partition_function(30, [], 0.1)

    def test_edge_validation(self):
        with pytest.raises(ValueError):
            ising_partition_function(2, [(0, 5)], 0.1)
        with pytest.raises(ValueError):
            ising_partition_function(2, [(1, 1)], 0.1)


class TestEvenSubsets:
    def test_triangle_cycle_space(self):
        subsets = even_edge_subsets(3, TRIANGLE)
        assert len(subsets) == 2  # empty set and the full triangle

    def test_tree_has_only_empty(self):
        assert even_edge_subsets(4, [(0, 1), (1, 2), (1, 3)]) == [0]

    def test_two_independent_cycles(self):
        edges = TRIANGLE + [(3, 4), (4, 5), (3, 5)]
        assert len(even_edge_subsets(6, edges)) == 4

    def test_all_subsets_even(self):
        edges = TRIANGLE_WITH_TAIL
        for mask in even_edge_subsets(5, edges):
            degree = {}
            for i, (u, v) in enumerate(edges):
                if mask & (1 << i):
                    degree[u] = degree.get(u, 0) + 1
                    degree[v] = degree.get(v, 0) + 1
            assert all(d % 2 == 0 for d in degree.values())


class TestFixedCountsDistribution:
    def test_normalized(self):
        dist = fixed_counts_color_distribution(4, SQUARE, 2, gamma=3.0)
        assert math.isclose(sum(dist.values()), 1.0)
        assert len(dist) == len(list(combinations(range(4), 2)))

    def test_gamma_one_uniform(self):
        dist = fixed_counts_color_distribution(4, SQUARE, 2, gamma=1.0)
        values = list(dist.values())
        assert all(math.isclose(v, values[0]) for v in values)

    def test_sorted_coloring_favored_at_large_gamma(self):
        """On a path, the contiguous coloring has the fewest
        heterogeneous edges and dominates for γ large."""
        path = [(0, 1), (1, 2), (2, 3)]
        dist = fixed_counts_color_distribution(4, path, 2, gamma=10.0)
        best = max(dist, key=dist.get)
        assert best in ((0, 0, 1, 1), (1, 1, 0, 0))

    def test_expected_hetero_decreases_with_gamma(self):
        path = [(0, 1), (1, 2), (2, 3)]
        high = expected_heterogeneous_edges(4, path, 2, gamma=8.0)
        low = expected_heterogeneous_edges(4, path, 2, gamma=1.0)
        assert high < low

    def test_coloring_weight(self):
        assert coloring_weight([(0, 1)], [0, 1], gamma=4.0) == 0.25
        assert coloring_weight([(0, 1)], [1, 1], gamma=4.0) == 1.0

    def test_count_validation(self):
        with pytest.raises(ValueError):
            fixed_counts_color_distribution(3, TRIANGLE, 5, gamma=2.0)


class TestChainConsistency:
    def test_chain_conditional_colors_match_ising(self):
        """Deep consistency check: conditioned on the node set, the exact
        chain's stationary distribution over colorings equals the
        fixed-magnetization Ising distribution with J = ln(γ)/2."""
        from repro.markov.exact import ExactChainAnalysis

        gamma = 3.0
        analysis = ExactChainAnalysis(4, [2, 2], lam=2.0, gamma=gamma)
        # Group stationary mass by node set; compare within-group
        # conditional probabilities to the Ising form γ^{-h} / Z_shape.
        by_shape = {}
        for state, probability in zip(analysis.states, analysis.pi):
            shape = tuple(sorted(state.colors))
            by_shape.setdefault(shape, []).append((state, probability))
        checked = 0
        for shape, entries in by_shape.items():
            if len(entries) < 2:
                continue
            total = sum(p for _, p in entries)
            for state, probability in entries:
                expected = (
                    gamma ** (-state.hetero_total)
                    / sum(gamma ** (-s.hetero_total) for s, _ in entries)
                )
                assert math.isclose(probability / total, expected, rel_tol=1e-9)
                checked += 1
        assert checked > 100
