"""Deep property-based fuzzing across module boundaries.

These tests generate randomized systems, parameters, and trajectories
and assert the library's global invariants — the properties that must
hold for *every* input, not just the curated cases elsewhere in the
suite.
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.compression_metric import minimum_perimeter
from repro.analysis.separation_metric import best_certificate, evaluate_region
from repro.core.batch_kernel import BatchKernel
from repro.core.separation_chain import SeparationChain
from repro.lattice.boundary import boundary_walk, turning_number
from repro.system.initializers import random_blob_system
from repro.system.observables import (
    color_counts,
    edge_count_scratch,
    heterogeneous_edge_count_scratch,
)
from repro.util.serialization import (
    configuration_from_json,
    configuration_to_json,
)

lam_st = st.floats(min_value=0.3, max_value=8.0, allow_nan=False)
gamma_st = st.floats(min_value=0.3, max_value=8.0, allow_nan=False)


class TestChainFuzz:
    @given(
        st.integers(min_value=2, max_value=45),
        lam_st,
        gamma_st,
        st.integers(0, 10_000),
        st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_run_preserves_all_invariants(self, n, lam, gamma, seed, swaps):
        """For arbitrary (n, λ, γ, seed, swaps): connectivity, hole-
        freedom, counter consistency, color conservation, and the
        perimeter identity all survive a run."""
        system = random_blob_system(n, seed=seed)
        counts_before = color_counts(system)
        chain = SeparationChain(
            system, lam=lam, gamma=gamma, swaps=swaps, seed=seed
        )
        chain.run(2_000)
        system.validate()
        assert system.is_connected()
        assert not system.has_holes()
        assert color_counts(system) == counts_before
        assert system.perimeter() == system.perimeter(exact=True)
        assert system.perimeter() >= minimum_perimeter(n)

    @given(st.integers(min_value=2, max_value=40), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_trajectory_determinism(self, n, seed):
        """Two identically seeded runs are bit-identical."""
        outcomes = []
        for _ in range(2):
            system = random_blob_system(n, seed=seed)
            SeparationChain(system, lam=3.0, gamma=2.0, seed=seed).run(1_500)
            outcomes.append(sorted(system.colors.items()))
        assert outcomes[0] == outcomes[1]


#: Randomized interleavings of chain operations: batched runs, single
#: scalar steps, and on-the-fly parameter changes.
_op_st = st.lists(
    st.one_of(
        st.tuples(st.just("run"), st.integers(1, 400)),
        st.tuples(st.just("step"), st.just(0)),
        st.tuples(st.just("set"), st.integers(0, 3)),
    ),
    min_size=3,
    max_size=8,
)

_PARAM_POINTS = ((4.0, 4.0), (0.7, 2.0), (2.0, 0.7), (1.0, 1.0))


class TestCounterFuzz:
    """Incremental counters == from-scratch observables, always.

    The O(1) measurement path (PR 4) rests entirely on the edge and
    heterogeneous-edge counters staying exact through every update
    path: scalar steps, grid-kernel batched runs, batch-kernel runs,
    ``set_parameters`` rebuilds, and arena regrowth.  These fuzz tests
    interleave those paths randomly and re-derive the counters from
    scratch after every operation.
    """

    @pytest.mark.parametrize("backend", ["grid", "batch"])
    @given(
        st.integers(min_value=3, max_value=40),
        st.integers(0, 10_000),
        st.booleans(),
        _op_st,
    )
    @settings(max_examples=12, deadline=None)
    def test_interleaved_ops_keep_counters_exact(
        self, backend, n, seed, swaps, ops
    ):
        system = random_blob_system(n, seed=seed)
        chain = SeparationChain(
            system, lam=4.0, gamma=4.0, swaps=swaps, seed=seed,
            backend=backend,
        )
        for op, arg in ops:
            if op == "run":
                chain.run(arg)
            elif op == "step":
                chain.step()
            else:
                lam, gamma = _PARAM_POINTS[arg]
                chain.set_parameters(lam, gamma)
            assert system.edge_total == edge_count_scratch(system)
            assert system.hetero_total == heterogeneous_edge_count_scratch(
                system
            )
            assert system.perimeter() == system.perimeter(exact=True)
        assert system.is_connected()
        assert not system.has_holes()

    @given(
        st.integers(min_value=3, max_value=40),
        st.integers(0, 10_000),
        st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_batch_kernel_counters_survive_regrow(self, n, seed, swaps):
        """Forced arena regrowth (the rebuild path a drifting replica
        triggers naturally) must preserve every replica's counters."""
        system = random_blob_system(n, seed=seed)
        seeds = [seed, seed + 1, seed + 2]
        kernel = BatchKernel(
            system, 4.0, 4.0, replicas=3, seed=seeds, swaps=swaps
        )
        kernel.run(600)
        kernel._regrow()
        kernel.run(600)
        kernel.set_parameters(0.7, 2.0)
        kernel.run(600)
        for r in range(3):
            exported = kernel.export_system(r)
            assert int(kernel.edge[r]) == edge_count_scratch(exported)
            assert int(kernel.het[r]) == heterogeneous_edge_count_scratch(
                exported
            )
            assert int(kernel.perimeters()[r]) == exported.perimeter()
            assert exported.is_connected()
            assert not exported.has_holes()


class TestGeometryFuzz:
    @given(st.integers(min_value=2, max_value=60), st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_boundary_walk_closes_and_turns_once(self, n, seed):
        system = random_blob_system(n, seed=seed)
        occupied = set(system.colors)
        walk = boundary_walk(occupied)
        assert turning_number(walk) == 6
        assert set(walk) <= occupied
        # Every boundary node (one with an empty neighbor reachable from
        # outside) appears in the walk at least once.
        from repro.lattice.geometry import boundary_nodes

        assert boundary_nodes(occupied) <= set(walk) | set()

    @given(st.integers(min_value=1, max_value=3000))
    @settings(max_examples=60, deadline=None)
    def test_minimum_perimeter_is_achievable(self, n):
        """p_min(n) is realized by an actual configuration within the
        Lemma 2 construction family (never smaller than the formula)."""
        from repro.lattice.geometry import hexagon
        from repro.lattice.triangular import edges_of
        from repro.lattice.boundary import perimeter_from_edges

        constructed = perimeter_from_edges(n, len(edges_of(hexagon(n))))
        assert minimum_perimeter(n) <= constructed <= minimum_perimeter(n) + 1


class TestCertificateFuzz:
    @given(st.integers(min_value=4, max_value=50), st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_certificates_are_always_sound(self, n, seed):
        """Whatever region the heuristics produce, its reported numbers
        re-verify against the definition."""
        system = random_blob_system(n, seed=seed)
        certificate = best_certificate(system)
        assume(certificate is not None)
        measured = evaluate_region(
            system, set(certificate.region), certificate.color
        )
        assert measured is not None
        assert measured.cut_edges == certificate.cut_edges
        assert math.isclose(
            measured.density_inside, certificate.density_inside
        )
        assert math.isclose(
            measured.density_outside, certificate.density_outside
        )


class TestSerializationFuzz:
    @given(
        st.integers(min_value=1, max_value=60),
        st.integers(0, 500),
        st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_preserves_everything(self, n, seed, k):
        system = random_blob_system(n, seed=seed, num_colors=k)
        restored = configuration_from_json(configuration_to_json(system))
        assert restored.colors == system.colors
        assert restored.num_colors == system.num_colors
        assert restored.edge_total == system.edge_total
        assert restored.hetero_total == system.hetero_total
        assert restored.canonical_key() == system.canonical_key()
