"""Deep property-based fuzzing across module boundaries.

These tests generate randomized systems, parameters, and trajectories
and assert the library's global invariants — the properties that must
hold for *every* input, not just the curated cases elsewhere in the
suite.
"""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.compression_metric import minimum_perimeter
from repro.analysis.separation_metric import best_certificate, evaluate_region
from repro.core.separation_chain import SeparationChain
from repro.lattice.boundary import boundary_walk, turning_number
from repro.system.initializers import random_blob_system
from repro.system.observables import color_counts
from repro.util.serialization import (
    configuration_from_json,
    configuration_to_json,
)

lam_st = st.floats(min_value=0.3, max_value=8.0, allow_nan=False)
gamma_st = st.floats(min_value=0.3, max_value=8.0, allow_nan=False)


class TestChainFuzz:
    @given(
        st.integers(min_value=2, max_value=45),
        lam_st,
        gamma_st,
        st.integers(0, 10_000),
        st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_run_preserves_all_invariants(self, n, lam, gamma, seed, swaps):
        """For arbitrary (n, λ, γ, seed, swaps): connectivity, hole-
        freedom, counter consistency, color conservation, and the
        perimeter identity all survive a run."""
        system = random_blob_system(n, seed=seed)
        counts_before = color_counts(system)
        chain = SeparationChain(
            system, lam=lam, gamma=gamma, swaps=swaps, seed=seed
        )
        chain.run(2_000)
        system.validate()
        assert system.is_connected()
        assert not system.has_holes()
        assert color_counts(system) == counts_before
        assert system.perimeter() == system.perimeter(exact=True)
        assert system.perimeter() >= minimum_perimeter(n)

    @given(st.integers(min_value=2, max_value=40), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_trajectory_determinism(self, n, seed):
        """Two identically seeded runs are bit-identical."""
        outcomes = []
        for _ in range(2):
            system = random_blob_system(n, seed=seed)
            SeparationChain(system, lam=3.0, gamma=2.0, seed=seed).run(1_500)
            outcomes.append(sorted(system.colors.items()))
        assert outcomes[0] == outcomes[1]


class TestGeometryFuzz:
    @given(st.integers(min_value=2, max_value=60), st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_boundary_walk_closes_and_turns_once(self, n, seed):
        system = random_blob_system(n, seed=seed)
        occupied = set(system.colors)
        walk = boundary_walk(occupied)
        assert turning_number(walk) == 6
        assert set(walk) <= occupied
        # Every boundary node (one with an empty neighbor reachable from
        # outside) appears in the walk at least once.
        from repro.lattice.geometry import boundary_nodes

        assert boundary_nodes(occupied) <= set(walk) | set()

    @given(st.integers(min_value=1, max_value=3000))
    @settings(max_examples=60, deadline=None)
    def test_minimum_perimeter_is_achievable(self, n):
        """p_min(n) is realized by an actual configuration within the
        Lemma 2 construction family (never smaller than the formula)."""
        from repro.lattice.geometry import hexagon
        from repro.lattice.triangular import edges_of
        from repro.lattice.boundary import perimeter_from_edges

        constructed = perimeter_from_edges(n, len(edges_of(hexagon(n))))
        assert minimum_perimeter(n) <= constructed <= minimum_perimeter(n) + 1


class TestCertificateFuzz:
    @given(st.integers(min_value=4, max_value=50), st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_certificates_are_always_sound(self, n, seed):
        """Whatever region the heuristics produce, its reported numbers
        re-verify against the definition."""
        system = random_blob_system(n, seed=seed)
        certificate = best_certificate(system)
        assume(certificate is not None)
        measured = evaluate_region(
            system, set(certificate.region), certificate.color
        )
        assert measured is not None
        assert measured.cut_edges == certificate.cut_edges
        assert math.isclose(
            measured.density_inside, certificate.density_inside
        )
        assert math.isclose(
            measured.density_outside, certificate.density_outside
        )


class TestSerializationFuzz:
    @given(
        st.integers(min_value=1, max_value=60),
        st.integers(0, 500),
        st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_preserves_everything(self, n, seed, k):
        system = random_blob_system(n, seed=seed, num_colors=k)
        restored = configuration_from_json(configuration_to_json(system))
        assert restored.colors == system.colors
        assert restored.num_colors == system.num_colors
        assert restored.edge_total == system.edge_total
        assert restored.hetero_total == system.hetero_total
        assert restored.canonical_key() == system.canonical_key()
