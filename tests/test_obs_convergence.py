"""Tests for the streaming convergence diagnostics.

Two pillars: (1) every streaming estimator is pinned against its direct
NumPy reference on recorded trajectories, (2) attaching diagnostics at
any ``diag_every`` stride leaves trajectories — and the final RNG
state — bit-identical on the grid, dict, and batch kernels.
"""

import math
import random

import numpy as np
import pytest

from repro.core.separation_chain import SeparationChain
from repro.obs import JsonLogger, MetricsRegistry
from repro.obs.convergence import (
    BatchMeans,
    ChainDiagnostics,
    DiagnosticsConfig,
    ReplicaSetDiagnostics,
    RunningMoments,
    StreamDiagnostics,
    WindowedAutocorrelation,
    aggregate_summaries,
    offline_autocorrelation,
    offline_batch_means,
    offline_ess,
    offline_geweke,
    split_rhat,
)
from repro.system.initializers import hexagon_system


def ar1_series(n, phi=0.8, seed=7):
    """A correlated synthetic trajectory (AR(1) noise)."""
    rng = random.Random(seed)
    xs, x = [], 0.0
    for _ in range(n):
        x = phi * x + rng.gauss(0.0, 1.0)
        xs.append(x)
    return xs


def chain_trajectory(steps=6000, every=20, seed=3):
    """A real chain's (edges, hetero) samples every ``every`` steps."""
    chain = SeparationChain(
        hexagon_system(60, seed=seed), lam=3.0, gamma=2.0, seed=seed
    )
    edges, hetero = [], []
    for _ in range(steps // every):
        chain.run(every)
        edges.append(float(chain.system.edge_total))
        hetero.append(float(chain.system.hetero_total))
    return edges, hetero


# ---------------------------------------------------------------------------
# Streaming estimators vs direct NumPy references


class TestRunningMoments:
    def test_matches_numpy_population_moments(self):
        xs = ar1_series(500)
        moments = RunningMoments()
        for x in xs:
            moments.push(x)
        assert moments.count == len(xs)
        assert moments.mean == pytest.approx(np.mean(xs))
        assert moments.variance == pytest.approx(np.var(xs))

    def test_nan_before_first_sample(self):
        assert math.isnan(RunningMoments().variance)


class TestWindowedAutocorrelation:
    @pytest.mark.parametrize("maxlag", [1, 5, 32])
    def test_matches_offline_reference(self, maxlag):
        xs = ar1_series(400)
        moments = RunningMoments()
        autocorr = WindowedAutocorrelation(maxlag)
        for x in xs:
            moments.push(x)
            autocorr.push(x)
        reference = offline_autocorrelation(xs, maxlag)
        for lag in range(1, maxlag + 1):
            assert autocorr.rho(
                lag, moments.mean, moments.variance
            ) == pytest.approx(reference[lag - 1], rel=1e-9, abs=1e-12)

    def test_on_recorded_chain_trajectory(self):
        edges, hetero = chain_trajectory()
        for xs in (edges, hetero):
            moments = RunningMoments()
            autocorr = WindowedAutocorrelation(16)
            for x in xs:
                moments.push(x)
                autocorr.push(x)
            reference = offline_autocorrelation(xs, 16)
            for lag in (1, 4, 16):
                assert autocorr.rho(
                    lag, moments.mean, moments.variance
                ) == pytest.approx(reference[lag - 1], rel=1e-9, abs=1e-12)

    def test_tau_positive_for_correlated_series(self):
        xs = ar1_series(2000, phi=0.9)
        moments = RunningMoments()
        autocorr = WindowedAutocorrelation(32)
        for x in xs:
            moments.push(x)
            autocorr.push(x)
        tau = autocorr.tau(moments.mean, moments.variance)
        assert tau > 3.0  # AR(1) with phi=0.9 has tau ~ 19

    def test_nan_when_unestimable(self):
        autocorr = WindowedAutocorrelation(4)
        autocorr.push(1.0)
        assert math.isnan(autocorr.rho(1, 1.0, 0.0))  # zero variance
        assert math.isnan(autocorr.rho(2, 0.0, 1.0))  # too few pairs


class TestBatchMeans:
    @pytest.mark.parametrize("n", [3, 64, 200, 1000])
    def test_collapse_matches_offline_batches(self, n):
        xs = ar1_series(n, seed=n)
        batches = BatchMeans(capacity=8)
        for x in xs:
            batches.push(x)
        reference = offline_batch_means(xs, batches.batch_size)
        assert batches.means == pytest.approx(reference)
        assert batches.used == len(batches.means) * batches.batch_size
        assert len(xs) - batches.used < batches.batch_size

    def test_memory_stays_bounded(self):
        batches = BatchMeans(capacity=8)
        for x in ar1_series(10_000):
            batches.push(x)
        assert len(batches.means) < 8

    def test_rejects_odd_or_tiny_capacity(self):
        with pytest.raises(ValueError):
            BatchMeans(capacity=7)
        with pytest.raises(ValueError):
            BatchMeans(capacity=2)


class TestEssAndGeweke:
    def test_stream_ess_matches_offline(self):
        xs = ar1_series(777, phi=0.6)
        config = DiagnosticsConfig(stride=1, batch_capacity=16)
        stream = StreamDiagnostics(config)
        for x in xs:
            stream.push(x)
        expected = offline_ess(
            xs, stream.batches.batch_size, config.min_batches
        )
        assert stream.ess() == pytest.approx(expected, rel=1e-9)

    def test_ess_much_smaller_than_n_for_correlated_data(self):
        xs = ar1_series(4000, phi=0.95)
        stream = StreamDiagnostics(DiagnosticsConfig(stride=1))
        for x in xs:
            stream.push(x)
        assert stream.ess() < len(xs) / 4

    def test_stream_geweke_matches_offline(self):
        xs = ar1_series(600, phi=0.5, seed=11)
        config = DiagnosticsConfig(stride=1, batch_capacity=16)
        stream = StreamDiagnostics(config)
        for x in xs:
            stream.push(x)
        expected = offline_geweke(
            xs, stream.batches.batch_size, config.min_batches
        )
        assert stream.geweke() == pytest.approx(expected, rel=1e-9)

    def test_on_recorded_chain_trajectory(self):
        edges, _ = chain_trajectory()
        config = DiagnosticsConfig(stride=1, batch_capacity=16)
        stream = StreamDiagnostics(config)
        for x in edges:
            stream.push(x)
        batch_size = stream.batches.batch_size
        assert stream.ess() == pytest.approx(
            offline_ess(edges, batch_size, config.min_batches), rel=1e-9
        )
        assert stream.geweke() == pytest.approx(
            offline_geweke(edges, batch_size, config.min_batches), rel=1e-9
        )

    def test_constant_stream_has_zero_ess(self):
        stream = StreamDiagnostics(DiagnosticsConfig(stride=1))
        for _ in range(100):
            stream.push(5.0)
        assert stream.ess() == 0.0


class TestSplitRhat:
    def test_identical_chains_give_one(self):
        xs = ar1_series(100)
        assert split_rhat([xs, xs]) == pytest.approx(1.0, abs=0.05)

    def test_divergent_chains_flagged(self):
        a = ar1_series(200, seed=1)
        b = [x + 50.0 for x in ar1_series(200, seed=2)]
        assert split_rhat([a, b]) > 1.5

    def test_within_chain_drift_flagged(self):
        # A strong trend inside one chain inflates between-half variance.
        drifting = [i * 1.0 for i in range(100)]
        assert split_rhat([drifting]) > 1.5

    def test_nan_until_enough_samples(self):
        assert math.isnan(split_rhat([[1.0, 2.0, 3.0]]))
        assert math.isnan(split_rhat([]))

    def test_constant_chains(self):
        assert split_rhat([[2.0] * 10, [2.0] * 10]) == 1.0
        assert split_rhat([[1.0] * 10, [9.0] * 10]) == math.inf


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"stride": 0},
            {"verdict_every": 0},
            {"maxlag": 0},
            {"batch_capacity": 5},
            {"batch_capacity": 2},
            {"min_batches": 1},
            {"stall_window": 1},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DiagnosticsConfig(**kwargs)


# ---------------------------------------------------------------------------
# Bit-identity: diagnostics must not perturb trajectories or the RNG


def _fingerprint(chain):
    return (
        list(chain.system.colors.items()),  # values AND insertion order
        chain.system.edge_total,
        chain.system.hetero_total,
        chain.accepted_moves,
        chain.accepted_swaps,
        chain.iterations,
    )


def _make_chain(backend, seed=5):
    return SeparationChain(
        hexagon_system(80, seed=seed),
        lam=4.0,
        gamma=4.0,
        seed=seed,
        backend=backend,
    )


class TestBitIdentity:
    @pytest.mark.parametrize("backend", ["auto", "grid", "dict"])
    @pytest.mark.parametrize("stride", [7, 333, 1000, 50_000])
    def test_scalar_kernels_and_rng_state(self, backend, stride):
        plain = _make_chain(backend)
        diagnosed = _make_chain(backend)
        diagnosed.instrument(
            diagnostics=ChainDiagnostics(DiagnosticsConfig(stride=stride))
        )
        plain.run(20_000)
        diagnosed.run(20_000)
        assert _fingerprint(plain) == _fingerprint(diagnosed)
        # The strongest check: identical Mersenne state means the two
        # runs drew exactly the same randoms in the same order, so any
        # continuation also stays identical.
        assert plain.rng.getstate() == diagnosed.rng.getstate()

    def test_batch_kernel_and_rng_state(self):
        plain = _make_chain("batch")
        diagnosed = _make_chain("batch")
        diagnosed.instrument(
            diagnostics=ChainDiagnostics(DiagnosticsConfig(stride=500))
        )
        plain.run(30_000)
        diagnosed.run(30_000)
        assert _fingerprint(plain) == _fingerprint(diagnosed)
        states_plain = [
            g.bit_generator.state for g in plain._batch_kernel.gens
        ]
        states_diag = [
            g.bit_generator.state for g in diagnosed._batch_kernel.gens
        ]
        assert states_plain == states_diag

    def test_identity_across_multiple_run_calls(self):
        plain = _make_chain("auto")
        diagnosed = _make_chain("auto")
        diagnosed.instrument(
            diagnostics=ChainDiagnostics(DiagnosticsConfig(stride=250))
        )
        for steps in (1234, 766, 3000, 11_000):
            plain.run(steps)
            diagnosed.run(steps)
        assert _fingerprint(plain) == _fingerprint(diagnosed)
        assert plain.rng.getstate() == diagnosed.rng.getstate()

    def test_diagnostics_actually_sampled(self):
        diagnosed = _make_chain("grid")
        diag = ChainDiagnostics(DiagnosticsConfig(stride=1000))
        diagnosed.instrument(diagnostics=diag)
        diagnosed.run(20_000)
        assert diag.samples == 20
        assert diag.iteration == 20_000


# ---------------------------------------------------------------------------
# Chain-level behavior: sampling, verdicts, stall detection, sinks


class TestChainDiagnostics:
    def test_steps_until_tick(self):
        diag = ChainDiagnostics(DiagnosticsConfig(stride=100))
        assert diag.steps_until_tick(0) == 100
        assert diag.steps_until_tick(70) == 30
        assert diag.steps_until_tick(100) == 100

    def test_summary_shape(self):
        diag = ChainDiagnostics(DiagnosticsConfig(stride=10))
        for i in range(1, 50):
            diag.maybe_record(i * 10, 100 + i, 40 - i % 5, i * 3)
        summary = diag.summary()
        for key in (
            "samples", "ess", "tau", "geweke", "rhat", "acceptance_rate",
            "stalled", "converged", "reasons", "ess_min", "streams",
        ):
            assert key in summary
        assert summary["samples"] == 49
        assert summary["rhat"] is None  # single chain: no cross-replica R
        assert set(summary["streams"]) == {"edges", "hetero"}

    def test_stall_on_flat_observables(self):
        config = DiagnosticsConfig(stride=10, stall_window=4)
        diag = ChainDiagnostics(config)
        for i in range(1, 10):
            diag.maybe_record(i * 10, 100.0, 40.0, i)  # frozen energy
        summary = diag.summary()
        assert summary["stalled"]
        assert any("flat" in reason for reason in summary["reasons"])
        assert not summary["converged"]

    def test_stall_on_acceptance_collapse(self):
        config = DiagnosticsConfig(
            stride=10, stall_window=4, acceptance_floor=0.05
        )
        diag = ChainDiagnostics(config)
        for i in range(1, 10):
            # accepted counter frozen -> windowed acceptance rate 0.
            diag.maybe_record(i * 10, 100 + i, 40 - i, 500)
        summary = diag.summary()
        assert summary["stalled"]
        assert any("acceptance" in r for r in summary["reasons"])

    def test_no_stall_on_moving_chain(self):
        config = DiagnosticsConfig(stride=10, stall_window=4)
        diag = ChainDiagnostics(config)
        for i in range(1, 10):
            diag.maybe_record(i * 10, 100 + i, 40 - i, i * 5)
        assert not diag.summary()["stalled"]

    def test_events_and_metrics_published(self):
        logger = JsonLogger.collecting(level="debug")
        metrics = MetricsRegistry()
        config = DiagnosticsConfig(stride=10, stall_window=4)
        diag = ChainDiagnostics(config, metrics=metrics, logger=logger)
        for i in range(1, 10):
            diag.maybe_record(i * 10, 100.0, 40.0, i)
        events = [r["event"] for r in logger.records]
        assert events.count("chain.stalled") == 1  # transition, not per tick
        snapshot = metrics.snapshot()
        assert len(snapshot["series"]["diag.samples"]) == 9
        # tau is NaN on a constant stream and NaN gauges are skipped.
        assert snapshot["gauges"]["diag.ess"] == 0.0
        assert "diag.tau" not in snapshot["gauges"]

    def test_verdict_cadence_amortizes_gauge_updates(self):
        """Gauges/events follow ``verdict_every``; the series does not."""
        metrics = MetricsRegistry()
        config = DiagnosticsConfig(stride=10, verdict_every=4)
        diag = ChainDiagnostics(config, metrics=metrics)
        for i in range(1, 4):  # 3 samples: cadence not yet reached
            diag.maybe_record(i * 10, 100 + i, 40 - i, i * 5)
        snapshot = metrics.snapshot()
        assert len(snapshot["series"]["diag.samples"]) == 3
        assert "diag.acceptance_rate" not in snapshot["gauges"]
        diag.maybe_record(40, 104.0, 36.0, 20)  # 4th sample: verdict due
        assert "diag.acceptance_rate" in metrics.snapshot()["gauges"]

    def test_verdict_every_one_publishes_per_sample(self):
        metrics = MetricsRegistry()
        config = DiagnosticsConfig(stride=10, verdict_every=1)
        diag = ChainDiagnostics(config, metrics=metrics)
        diag.maybe_record(10, 100.0, 40.0, 5)
        assert "diag.acceptance_rate" in metrics.snapshot()["gauges"]

    def test_converged_event_on_convergent_stream(self):
        logger = JsonLogger.collecting(level="debug")
        rng = random.Random(0)
        diag = ChainDiagnostics(
            DiagnosticsConfig(stride=1, ess_min=50.0, batch_capacity=16),
            logger=logger,
        )
        for i in range(1, 2000):
            diag.maybe_record(
                i, rng.gauss(100, 5), rng.gauss(40, 3), int(i * 0.4)
            )
        assert diag.summary()["converged"]
        assert "chain.converged" in [r["event"] for r in logger.records]


class TestReplicaSetDiagnostics:
    def test_cross_replica_rhat_detects_divergence(self):
        rng = random.Random(1)
        diag = ReplicaSetDiagnostics(
            2, DiagnosticsConfig(stride=1, batch_capacity=16)
        )
        for i in range(1, 600):
            # Replica 1 orbits a different mean: R-hat must blow up.
            diag.maybe_record(
                i,
                [rng.gauss(100, 2), rng.gauss(160, 2)],
                [rng.gauss(40, 2), rng.gauss(80, 2)],
                [int(i * 0.4), int(i * 0.4)],
            )
        assert diag.rhat() > 1.5
        summary = diag.summary()
        assert summary["rhat"] > 1.5
        assert not summary["converged"]

    def test_agreeing_replicas_pass(self):
        rng = random.Random(2)
        diag = ReplicaSetDiagnostics(
            3, DiagnosticsConfig(stride=1, ess_min=50.0, batch_capacity=16)
        )
        for i in range(1, 2000):
            diag.maybe_record(
                i,
                [rng.gauss(100, 5) for _ in range(3)],
                [rng.gauss(40, 3) for _ in range(3)],
                [int(i * 0.4)] * 3,
            )
        summary = diag.summary()
        assert summary["rhat"] == pytest.approx(1.0, abs=0.15)
        assert summary["converged"]

    def test_member_summary_carries_shared_rhat(self):
        rng = random.Random(3)
        diag = ReplicaSetDiagnostics(
            2, DiagnosticsConfig(stride=1, batch_capacity=16)
        )
        for i in range(1, 400):
            diag.maybe_record(
                i,
                [rng.gauss(100, 2), rng.gauss(101, 2)],
                [rng.gauss(40, 2), rng.gauss(41, 2)],
                [i, i],
            )
        member = diag.member_summary(1)
        assert member["replica"] == 1
        assert member["replicas"] == 2
        assert member["rhat"] == diag.summary()["rhat"]
        with pytest.raises(ValueError):
            diag.member_summary(5)

    def test_rejects_bad_replica_count(self):
        with pytest.raises(ValueError):
            ReplicaSetDiagnostics(0)


class TestAggregateSummaries:
    def test_none_and_empty(self):
        assert aggregate_summaries([]) is None
        assert aggregate_summaries([None, None]) is None

    def test_worst_cell_folding(self):
        cells = [
            {"ess": 300.0, "rhat": 1.01, "geweke": -0.5, "stalled": False,
             "converged": True, "ess_min": 100.0},
            {"ess": 40.0, "rhat": 1.4, "geweke": 2.5, "stalled": True,
             "converged": False, "ess_min": 100.0},
        ]
        folded = aggregate_summaries(cells)
        assert folded["cells"] == 2
        assert folded["min_ess"] == 40.0
        assert folded["max_rhat"] == 1.4
        assert folded["max_abs_geweke"] == 2.5
        assert folded["stalled_cells"] == 1
        assert not folded["converged"]
        assert folded["low_ess"]

    def test_all_good_cells(self):
        cells = [
            {"ess": 300.0, "rhat": None, "geweke": 0.5, "stalled": False,
             "converged": True, "ess_min": 100.0},
        ] * 2
        folded = aggregate_summaries(cells)
        assert folded["converged"]
        assert not folded["low_ess"]

    def test_missing_ess_flags_low(self):
        folded = aggregate_summaries(
            [{"ess": None, "converged": False, "ess_min": 100.0}]
        )
        assert folded["low_ess"]
        assert folded["min_ess"] is None
