"""Tests for the triangular-lattice coordinate system."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lattice.triangular import (
    DIRECTIONS,
    NEIGHBOR_OFFSETS,
    _edge_ring_explicit,
    are_adjacent,
    canonical_form,
    common_neighbors,
    direction_between,
    edge_key,
    edge_ring,
    edges_of,
    induced_degree,
    neighborhood,
    neighbors,
    rotate60,
    to_cartesian,
    translate,
)

nodes_st = st.tuples(
    st.integers(min_value=-30, max_value=30),
    st.integers(min_value=-30, max_value=30),
)
directions_st = st.integers(min_value=0, max_value=5)


class TestNeighbors:
    def test_six_neighbors(self):
        assert len(neighbors((0, 0))) == 6

    def test_neighbors_distinct(self):
        assert len(set(neighbors((3, -2)))) == 6

    def test_direction_names_match_offsets(self):
        assert len(DIRECTIONS) == len(NEIGHBOR_OFFSETS) == 6

    def test_neighborhood_with_self(self):
        result = neighborhood((2, 2), include_self=True)
        assert result[0] == (2, 2)
        assert len(result) == 7

    @given(nodes_st)
    def test_neighbors_at_unit_cartesian_distance(self, node):
        cx, cy = to_cartesian(node)
        for nbr in neighbors(node):
            nx, ny = to_cartesian(nbr)
            assert math.isclose(math.hypot(nx - cx, ny - cy), 1.0)

    @given(nodes_st)
    def test_adjacency_is_symmetric(self, node):
        for nbr in neighbors(node):
            assert are_adjacent(node, nbr)
            assert are_adjacent(nbr, node)

    def test_not_adjacent_to_self(self):
        assert not are_adjacent((0, 0), (0, 0))

    def test_not_adjacent_distance_two(self):
        assert not are_adjacent((0, 0), (2, 0))


class TestDirections:
    @given(nodes_st, directions_st)
    def test_direction_between_roundtrip(self, node, d):
        dx, dy = NEIGHBOR_OFFSETS[d]
        assert direction_between(node, (node[0] + dx, node[1] + dy)) == d

    def test_direction_between_non_adjacent_raises(self):
        with pytest.raises(ValueError):
            direction_between((0, 0), (5, 5))


class TestCommonNeighbors:
    @given(nodes_st, directions_st)
    def test_adjacent_nodes_share_exactly_two(self, node, d):
        dx, dy = NEIGHBOR_OFFSETS[d]
        other = (node[0] + dx, node[1] + dy)
        commons = common_neighbors(node, other)
        assert len(commons) == 2
        for c in commons:
            assert are_adjacent(c, node)
            assert are_adjacent(c, other)


class TestEdgeRing:
    @given(nodes_st, directions_st)
    def test_ring_has_eight_distinct_nodes(self, node, d):
        dx, dy = NEIGHBOR_OFFSETS[d]
        ring = edge_ring(node, (node[0] + dx, node[1] + dy))
        assert len(ring) == 8
        assert len(set(ring)) == 8

    @given(nodes_st, directions_st)
    def test_ring_matches_explicit_construction(self, node, d):
        dx, dy = NEIGHBOR_OFFSETS[d]
        other = (node[0] + dx, node[1] + dy)
        assert set(edge_ring(node, other)) == set(_edge_ring_explicit(node, other))

    @given(nodes_st, directions_st)
    def test_ring_is_chordless_cycle(self, node, d):
        dx, dy = NEIGHBOR_OFFSETS[d]
        ring = edge_ring(node, (node[0] + dx, node[1] + dy))
        for i in range(8):
            assert are_adjacent(ring[i], ring[(i + 1) % 8])
            for j in range(i + 2, 8):
                if (i, j) != (0, 7):
                    assert not are_adjacent(ring[i], ring[j])

    @given(nodes_st, directions_st)
    def test_ring_commons_at_positions_0_and_4(self, node, d):
        dx, dy = NEIGHBOR_OFFSETS[d]
        other = (node[0] + dx, node[1] + dy)
        ring = edge_ring(node, other)
        assert {ring[0], ring[4]} == set(common_neighbors(node, other))

    @given(nodes_st, directions_st)
    def test_ring_excludes_endpoints(self, node, d):
        dx, dy = NEIGHBOR_OFFSETS[d]
        other = (node[0] + dx, node[1] + dy)
        ring = edge_ring(node, other)
        assert node not in ring
        assert other not in ring


class TestRotation:
    @given(nodes_st)
    def test_six_rotations_identity(self, node):
        assert rotate60(node, 6) == node

    @given(nodes_st)
    def test_rotation_preserves_origin_distance(self, node):
        cx, cy = to_cartesian(node)
        rx, ry = to_cartesian(rotate60(node))
        assert math.isclose(math.hypot(cx, cy), math.hypot(rx, ry), abs_tol=1e-9)

    @given(nodes_st, directions_st)
    def test_rotation_preserves_adjacency(self, node, d):
        dx, dy = NEIGHBOR_OFFSETS[d]
        other = (node[0] + dx, node[1] + dy)
        assert are_adjacent(rotate60(node), rotate60(other))


class TestEdgesAndKeys:
    def test_edge_key_orders_endpoints(self):
        assert edge_key((1, 0), (0, 0)) == ((0, 0), (1, 0))

    def test_edges_of_triangle(self):
        assert len(edges_of([(0, 0), (1, 0), (0, 1)])) == 3

    def test_edges_of_line(self):
        assert len(edges_of([(0, 0), (1, 0), (2, 0)])) == 2

    def test_induced_degree(self):
        occupied = {(0, 0), (1, 0), (0, 1)}
        assert induced_degree((0, 0), occupied) == 2
        assert induced_degree((5, 5), occupied) == 0


class TestCanonicalForm:
    @given(st.lists(nodes_st, min_size=1, max_size=8, unique=True), nodes_st)
    def test_translation_invariance(self, nodes, delta):
        assert canonical_form(nodes) == canonical_form(translate(nodes, delta))

    def test_empty(self):
        assert canonical_form([]) == ()

    def test_sorted_output(self):
        result = canonical_form([(5, 5), (6, 5), (5, 6)])
        assert list(result) == sorted(result)
