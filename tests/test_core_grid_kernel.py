"""Tests for the flat-grid step kernel (integer-indexed arena backend).

The grid kernel is a pure performance backend: it must consume the
*exact same* ``random.Random`` stream as the dict kernel and therefore
produce bit-identical trajectories — identical configurations (including
dict insertion order, which ``canonical_key`` and serialization round-
trips observe), identical counters, and identical post-run RNG state.
These tests pin that contract, the amortized regrow policy, the
consumed-prefix buffer refill, and the memoized power tables.
"""

import random

import pytest

from repro.core.compression_chain import CompressionChain
from repro.core.separation_chain import (
    _GRID_MIN_STEPS,
    MOVE_DELTA,
    _MOVE_REJECT,
    _power_table,
    KERNEL_BACKENDS,
    E_DST,
    E_SRC,
    MOVE_OK,
    SeparationChain,
)
from repro.system.initializers import (
    hexagon_system,
    line_system,
    random_blob_system,
)


def _pair(
    n=60, lam=4.0, gamma=4.0, seed=7, swaps=True, counts=None, num_colors=2
):
    """Two chains on identically-built systems, one per kernel."""
    chains = []
    for backend in ("dict", "grid"):
        system = hexagon_system(
            n, counts=counts, num_colors=num_colors, seed=seed
        )
        chains.append(
            SeparationChain(
                system,
                lam=lam,
                gamma=gamma,
                swaps=swaps,
                seed=seed,
                backend=backend,
            )
        )
    return chains


def _assert_identical(dict_chain, grid_chain):
    """Full bit-identity check: state, counters, RNG, insertion order."""
    ds, gs = dict_chain.system, grid_chain.system
    # Ordered equality — the grid sync must reproduce the dict kernel's
    # insertion order, not merely the same mapping.
    assert list(ds.colors.items()) == list(gs.colors.items())
    assert (ds.edge_total, ds.hetero_total) == (gs.edge_total, gs.hetero_total)
    assert dict_chain.accepted_moves == grid_chain.accepted_moves
    assert dict_chain.accepted_swaps == grid_chain.accepted_swaps
    assert dict_chain.iterations == grid_chain.iterations
    assert dict_chain.rng.getstate() == grid_chain.rng.getstate()


class TestTables:
    def test_move_delta_matches_component_tables(self):
        assert len(MOVE_DELTA) == 256
        for mask in range(256):
            if MOVE_OK[mask]:
                assert MOVE_DELTA[mask] == E_DST[mask] - E_SRC[mask]
            else:
                assert MOVE_DELTA[mask] == _MOVE_REJECT

    def test_power_table_memoized(self):
        assert _power_table(4.0, 5) is _power_table(4.0, 5)
        assert _power_table(4.0, 10) is not _power_table(4.0, 5)

    def test_kernel_backends_constant(self):
        assert KERNEL_BACKENDS == ("auto", "grid", "dict")


class TestConstruction:
    def test_invalid_backend_raises(self):
        system = hexagon_system(10, seed=0)
        with pytest.raises(ValueError):
            SeparationChain(system, lam=4.0, gamma=4.0, backend="numpy")

    def test_auto_skips_grid_below_threshold(self):
        chain = SeparationChain(
            hexagon_system(20, seed=0), lam=4.0, gamma=4.0, seed=0
        )
        chain.run(_GRID_MIN_STEPS - 1)
        assert not chain._arena  # never built

    def test_forced_grid_engages_for_short_runs(self):
        chain = SeparationChain(
            hexagon_system(20, seed=0), lam=4.0, gamma=4.0, seed=0,
            backend="grid",
        )
        chain.run(10)
        assert chain._arena

    def test_subclassed_rng_disables_grid(self):
        class TracingRandom(random.Random):
            pass

        chain = SeparationChain(
            hexagon_system(10, seed=0),
            lam=4.0,
            gamma=4.0,
            seed=TracingRandom(3),
            backend="grid",
        )
        chain.run(2000)
        assert not chain._arena
        chain.system.validate()


class TestBitIdentity:
    @pytest.mark.parametrize("swaps", [True, False])
    @pytest.mark.parametrize(
        "lam,gamma", [(4.0, 4.0), (0.6, 4.0), (4.0, 0.6), (1.0, 1.0)]
    )
    def test_run_trajectories_identical(self, lam, gamma, swaps):
        d, g = _pair(n=60, lam=lam, gamma=gamma, swaps=swaps)
        d.run(20_000)
        g.run(20_000)
        _assert_identical(d, g)
        g.system.validate()

    def test_multicolor_trajectories_identical(self):
        d, g = _pair(n=60, counts=[30, 20, 10], num_colors=3, seed=11)
        d.run(20_000)
        g.run(20_000)
        _assert_identical(d, g)

    def test_mixed_run_step_set_parameters_sequences(self):
        d, g = _pair(n=50, seed=3)
        for chain in (d, g):
            chain.run(1_337)
            for _ in range(61):
                chain.step()
            chain.set_parameters(lam=2.5, gamma=6.0)
            chain.run(8_002)
            chain.run(10)
            chain.run(997)
        _assert_identical(d, g)

    def test_extreme_biases_identical(self):
        for lam, gamma in [(1e40, 1e-40), (1e-40, 1e40)]:
            d, g = _pair(n=40, lam=lam, gamma=gamma, seed=9)
            d.run(5_000)
            g.run(5_000)
            _assert_identical(d, g)

    def test_blob_start_identical(self):
        chains = []
        for backend in ("dict", "grid"):
            system = random_blob_system(45, seed=17)
            chains.append(
                SeparationChain(
                    system, lam=4.0, gamma=4.0, seed=17, backend=backend
                )
            )
        d, g = chains
        d.run(15_000)
        g.run(15_000)
        _assert_identical(d, g)

    def test_refresh_positions_after_external_mutation(self):
        d, g = _pair(n=40, seed=5)
        d.run(2_000)
        g.run(2_000)
        for chain in (d, g):
            # Identical external mutation: move a boundary particle onto
            # an adjacent empty node (same pick on both systems).
            system = chain.system
            src = next(
                node
                for node in sorted(system.colors)
                if len(system.occupied_neighbors(node)) < 6
            )
            x, y = src
            dst = next(
                (x + dx, y + dy)
                for dx, dy in ((1, 0), (0, 1), (-1, 1), (-1, 0), (0, -1), (1, -1))
                if not system.is_occupied((x + dx, y + dy))
            )
            system.move_particle(src, dst)
            chain.refresh_positions()
            chain.run(3_000)
        _assert_identical(d, g)

    def test_compression_chain_inherits_grid_kernel(self):
        chains = [
            CompressionChain.from_line(30, lam=4.0, seed=2, backend=backend)
            for backend in ("dict", "grid")
        ]
        d, g = chains
        d.run(20_000)
        g.run(20_000)
        _assert_identical(d, g)
        assert g.system.perimeter() < 3 * 30 - 3 - (30 - 1)  # compressed below line

    def test_counters_validate_after_long_grid_run(self):
        system = hexagon_system(80, seed=13)
        chain = SeparationChain(
            system, lam=4.0, gamma=4.0, seed=13, backend="grid"
        )
        chain.run(100_000)
        system.validate()
        assert system.is_connected()
        assert not system.has_holes()


class TestRegrow:
    def test_arena_regrows_when_expanding(self):
        # A low-lambda chain from a line start wanders outward; a tiny
        # initial margin forces at least one doubling.
        system = line_system(40, seed=4)
        chain = SeparationChain(
            system, lam=0.5, gamma=1.0, seed=4, backend="grid"
        )
        chain._grid_margin = 4
        chain.run(120_000)
        assert chain._grid_regrows > 0
        system.validate()
        assert system.is_connected()

    def test_regrow_preserves_bit_identity(self):
        d, g = _pair(n=40, lam=0.7, gamma=1.0, seed=21)
        g._grid_margin = 4
        d.run(60_000)
        g.run(60_000)
        assert g._grid_regrows > 0
        _assert_identical(d, g)


class TestBufferRefill:
    def test_stream_identity_across_refill_boundaries(self):
        """Chunked draws must consume the RNG exactly like a step loop.

        Slicing runs so they straddle refill boundaries at many offsets;
        the reference is the same-seed step() loop, which draws variates
        one at a time and never batches.
        """
        ref = SeparationChain(
            hexagon_system(40, seed=6), lam=4.0, gamma=4.0, seed=6
        )
        for _ in range(40_000):
            ref.step()

        finished = []
        for backend in ("dict", "grid"):
            chain = SeparationChain(
                hexagon_system(40, seed=6),
                lam=4.0,
                gamma=4.0,
                seed=6,
                backend=backend,
            )
            # Awkward run lengths guarantee leftover buffered variates
            # carried across calls and mid-buffer refills.
            done = 0
            for length in (257, 511, 1_023, 4_097, 777):
                chain.run(length)
                done += length
            chain.run(40_000 - done)
            # Trajectory identity with the unbatched reference.  The
            # chunked chains may have drawn ahead into their buffers, so
            # raw rng state is compared only between the two of them.
            assert list(ref.system.colors.items()) == list(
                chain.system.colors.items()
            )
            assert (
                ref.system.edge_total,
                ref.system.hetero_total,
            ) == (chain.system.edge_total, chain.system.hetero_total)
            finished.append(chain)
        d, g = finished
        assert d.rng.getstate() == g.rng.getstate()
        assert d._buffer[d._buffer_pos:] == g._buffer[g._buffer_pos:]

    def test_leftover_buffer_reused_between_runs(self):
        chain = SeparationChain(
            hexagon_system(30, seed=8), lam=4.0, gamma=4.0, seed=8
        )
        chain.run(1_000)
        leftover = len(chain._buffer) - chain._buffer_pos
        if leftover:  # consumed prefix must be dropped lazily, not eagerly
            chain.run(300)
            assert chain._buffer_pos <= len(chain._buffer)
        chain.system.validate()
