"""Tests for the ParticleSystem state object."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.system.configuration import ParticleSystem
from repro.system.initializers import hexagon_system, random_blob_system
from repro.util.rng import make_rng


def _random_valid_move(system, rng):
    """A uniformly chosen (src, empty adjacent dst) pair, if any exists."""
    from repro.lattice.triangular import NEIGHBOR_OFFSETS

    nodes = sorted(system.colors)
    rng.shuffle(nodes)
    for src in nodes:
        dirs = list(NEIGHBOR_OFFSETS)
        rng.shuffle(dirs)
        for dx, dy in dirs:
            dst = (src[0] + dx, src[1] + dy)
            if dst not in system.colors:
                return src, dst
    return None


class TestConstruction:
    def test_from_nodes(self):
        system = ParticleSystem.from_nodes([(0, 0), (1, 0)], [0, 1])
        assert system.n == 2
        assert system.edge_total == 1
        assert system.hetero_total == 1

    def test_homogeneous_edge_counts(self):
        system = ParticleSystem.from_nodes([(0, 0), (1, 0), (0, 1)], [0, 0, 1])
        assert system.edge_total == 3
        assert system.hetero_total == 2
        assert system.homogeneous_edges() == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ParticleSystem({})

    def test_duplicate_nodes_raise(self):
        with pytest.raises(ValueError):
            ParticleSystem.from_nodes([(0, 0), (0, 0)], [0, 1])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            ParticleSystem.from_nodes([(0, 0)], [0, 1])

    def test_too_many_colors_raise(self):
        with pytest.raises(ValueError):
            ParticleSystem.from_nodes([(0, 0), (1, 0)], [0, 5], num_colors=2)

    def test_negative_color_raises(self):
        with pytest.raises(ValueError):
            ParticleSystem.from_nodes([(0, 0)], [-1])

    def test_num_colors_inferred_at_least_two(self):
        system = ParticleSystem.from_nodes([(0, 0)], [0])
        assert system.num_colors == 2


class TestNeighborCounts:
    def test_counts_by_color(self):
        system = ParticleSystem.from_nodes(
            [(0, 0), (1, 0), (0, 1), (-1, 0)], [0, 1, 1, 0]
        )
        total, per_color = system.neighbor_counts((0, 0))
        assert total == 3
        assert per_color == [1, 2]

    def test_ignore_parameter(self):
        system = ParticleSystem.from_nodes([(0, 0), (1, 0), (0, 1)], [0, 1, 1])
        total, per_color = system.neighbor_counts((0, 0), ignore=((1, 0),))
        assert total == 1
        assert per_color == [0, 1]

    def test_occupied_neighbors(self):
        system = ParticleSystem.from_nodes([(0, 0), (1, 0), (5, 5)], [0, 0, 0])
        assert system.occupied_neighbors((0, 0)) == [(1, 0)]


class TestMoves:
    def test_move_updates_counters(self):
        system = ParticleSystem.from_nodes([(0, 0), (1, 0), (0, 1)], [0, 1, 0])
        before = (system.edge_total, system.hetero_total)
        system.move_particle((0, 1), (1, 1))
        # (1,1) neighbors (1,0) and (0,1)->now empty; edges: (0,0)-(1,0),
        # (1,0)-(1,1): total 2.
        assert system.edge_total == 2
        assert system.is_occupied((1, 1))
        assert not system.is_occupied((0, 1))
        system.validate()
        assert before != (system.edge_total, system.hetero_total)

    def test_move_to_occupied_raises(self):
        system = ParticleSystem.from_nodes([(0, 0), (1, 0)], [0, 1])
        with pytest.raises(ValueError):
            system.move_particle((0, 0), (1, 0))

    def test_swap_changes_colors_not_occupancy(self):
        system = ParticleSystem.from_nodes([(0, 0), (1, 0), (2, 0)], [0, 1, 0])
        system.swap_particles((0, 0), (1, 0))
        assert system.color_at((0, 0)) == 1
        assert system.color_at((1, 0)) == 0
        system.validate()

    def test_swap_same_color_noop(self):
        system = ParticleSystem.from_nodes([(0, 0), (1, 0)], [0, 0])
        h = system.hetero_total
        system.swap_particles((0, 0), (1, 0))
        assert system.hetero_total == h

    @given(st.integers(min_value=2, max_value=40), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_counters_survive_random_move_sequences(self, n, seed):
        """Incremental counters equal full recounts after arbitrary moves."""
        rng = make_rng(seed)
        system = random_blob_system(n, seed=seed)
        for _ in range(30):
            if rng.random() < 0.5:
                move = _random_valid_move(system, rng)
                if move:
                    system.move_particle(*move)
            else:
                nodes = sorted(system.colors)
                u = rng.choice(nodes)
                nbrs = system.occupied_neighbors(u)
                if nbrs:
                    system.swap_particles(u, rng.choice(nbrs))
        system.validate()  # raises if incremental counters diverged


class TestPerimeter:
    def test_fast_equals_exact_when_hole_free(self):
        system = hexagon_system(30, seed=1)
        assert system.perimeter() == system.perimeter(exact=True)

    def test_perimeter_of_pair(self):
        system = ParticleSystem.from_nodes([(0, 0), (1, 0)], [0, 1])
        assert system.perimeter() == 2

    @staticmethod
    def _holed_ring() -> ParticleSystem:
        """Six particles ringing an empty center: the smallest holed set."""
        from repro.lattice.triangular import NEIGHBOR_OFFSETS

        nodes = list(NEIGHBOR_OFFSETS)
        return ParticleSystem.from_nodes(nodes, [0] * len(nodes))

    def test_identity_overcounts_on_holed_configuration(self):
        """p = 3n - 3 - e is only exact for hole-free configurations.

        The 6-ring has outer perimeter 6 but e = 6, so the identity
        yields 3*6 - 3 - 6 = 9 — the documented overcount.
        """
        system = self._holed_ring()
        assert system.has_holes()
        assert system.perimeter(exact=True) == 6
        assert system.perimeter() == 9  # identity path, silently wrong

    def test_debug_mode_catches_holed_identity(self, monkeypatch):
        from repro.system import configuration

        monkeypatch.setattr(configuration, "_PERIMETER_DEBUG", True)
        system = self._holed_ring()
        # The exact path never cross-checks — always safe.
        assert system.perimeter(exact=True) == 6
        with pytest.raises(AssertionError, match="perimeter identity"):
            system.perimeter()

    def test_debug_mode_passes_on_hole_free(self, monkeypatch):
        from repro.system import configuration

        monkeypatch.setattr(configuration, "_PERIMETER_DEBUG", True)
        system = hexagon_system(30, seed=1)
        assert system.perimeter() == system.perimeter(exact=True)


class TestCopyAndKeys:
    def test_copy_is_independent(self):
        from repro.lattice.triangular import neighbors

        system = hexagon_system(10, seed=2)
        clone = system.copy()
        moved = False
        for src in sorted(clone.colors):
            for dst in neighbors(src):
                if dst not in clone.colors:
                    clone.move_particle(src, dst)
                    moved = True
                    break
            if moved:
                break
        assert moved
        assert system.colors != clone.colors
        system.validate()

    def test_canonical_key_translation_invariant(self):
        a = ParticleSystem.from_nodes([(0, 0), (1, 0)], [0, 1])
        b = ParticleSystem.from_nodes([(5, -3), (6, -3)], [0, 1])
        assert a.canonical_key() == b.canonical_key()

    def test_canonical_key_distinguishes_colors(self):
        a = ParticleSystem.from_nodes([(0, 0), (1, 0)], [0, 1])
        b = ParticleSystem.from_nodes([(0, 0), (1, 0)], [1, 0])
        assert a.canonical_key() != b.canonical_key()

    def test_repr_mentions_counts(self):
        system = ParticleSystem.from_nodes([(0, 0), (1, 0)], [0, 1])
        assert "n=2" in repr(system)
