"""Tests for the binary columnar codec and the zero-copy sweep engine.

Covers the :mod:`repro.util.codec` frame format (round trips,
corruption, the checkpoint container), the engine's codec plumbing
(memoized task keys, warm-worker system cache, lazy snapshot decode,
cross-codec resume), and the cost-model scheduler (prediction, online
refinement, chunk planning).
"""

import random

import numpy as np
import pytest

from repro.experiments.costmodel import DEFAULT_RATE, CostModel
from repro.experiments.parallel import (
    CellTask,
    LazySnapshots,
    _plan_chunks,
    checkpoint_path,
    execute_cells,
    read_checkpoint_payload,
    run_cell,
    task_payload,
)
from repro.experiments.resilience import FailurePolicy, RetryPolicy, is_failed
from repro.obs import Instrumentation, MetricsRegistry
from repro.system.configuration import ParticleSystem
from repro.system.initializers import random_blob_system
from repro.util import codec
from repro.util.serialization import configuration_to_json


def make_task(n=16, seed=3, steps=400, checkpoints=(), **overrides):
    system = random_blob_system(n, seed=seed)
    fields = dict(
        lam=4.0,
        gamma=4.0,
        replica=0,
        seed=seed,
        steps=steps,
        system_json=configuration_to_json(system, sort_nodes=False),
        checkpoints=tuple(checkpoints),
    )
    fields.update(overrides)
    return CellTask(**fields)


def random_system(rng, n, num_colors=2):
    """A deliberately awkward configuration: scattered, non-contiguous
    coordinates (holes everywhere), negative offsets, shuffled insertion
    order, and all color classes present."""
    nodes = rng.sample(
        [(x, y) for x in range(-30, 30) for y in range(-30, 30)], n
    )
    colors = [index % num_colors for index in range(n)]
    rng.shuffle(colors)
    return ParticleSystem(
        dict(zip(nodes, colors)), num_colors=num_colors
    )


class TestConfigurationCodec:
    def test_round_trip_random_configurations(self):
        rng = random.Random(7)
        for trial in range(10):
            n = rng.randrange(2, 80)
            system = random_system(rng, n)
            decoded = codec.decode_configuration(
                codec.encode_configuration(system)
            )
            # Same nodes, same colors, and the same *insertion order* —
            # dict order is the chain's particle indexing.
            assert list(decoded.colors.items()) == list(
                system.colors.items()
            )
            assert decoded.num_colors == system.num_colors
            assert decoded.edge_total == system.edge_total
            assert decoded.hetero_total == system.hetero_total

    def test_counters_skip_recount_but_match_reference(self):
        system = random_blob_system(40, seed=9)
        decoded = codec.decode_configuration(
            codec.encode_configuration(system)
        )
        reference = ParticleSystem(
            dict(decoded.colors), num_colors=decoded.num_colors
        )
        assert decoded.edge_total == reference.edge_total
        assert decoded.hetero_total == reference.hetero_total

    def test_blob_is_smaller_than_json(self):
        system = random_blob_system(200, seed=1)
        blob = codec.encode_configuration(system)
        text = configuration_to_json(system, sort_nodes=False)
        assert len(blob) < len(text.encode())

    def test_encode_columns_matches_dict_encoder(self):
        system = random_blob_system(30, seed=4)
        nodes = list(system.colors)
        xy = np.array(nodes, dtype=np.int64)
        blob = codec.encode_columns(
            xy[:, 0],
            xy[:, 1],
            np.array(list(system.colors.values())),
            system.num_colors,
            system.edge_total,
            system.hetero_total,
        )
        decoded = codec.decode_configuration(blob)
        assert list(decoded.colors.items()) == list(system.colors.items())
        assert decoded.edge_total == system.edge_total

    def test_debug_mode_catches_counter_tampering(self, monkeypatch):
        monkeypatch.setenv(codec.DEBUG_ENV, "1")
        system = random_blob_system(20, seed=2)
        # Honest blob decodes fine under the cross-check.
        codec.decode_configuration(codec.encode_configuration(system))
        nodes = list(system.colors)
        xy = np.array(nodes, dtype=np.int64)
        tampered = codec.encode_columns(
            xy[:, 0],
            xy[:, 1],
            np.array(list(system.colors.values())),
            system.num_colors,
            system.edge_total + 5,  # lie about the counters
            system.hetero_total,
        )
        with pytest.raises(ValueError, match="disagree with recount"):
            codec.decode_configuration(tampered)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda blob: blob[:10],  # truncated mid-header
            lambda blob: blob[:-5],  # truncated body
            lambda blob: b"XXXX" + blob[4:],  # wrong magic
            lambda blob: blob[:-1] + bytes([blob[-1] ^ 0xFF]),  # bit rot
            lambda blob: b"",  # empty file
        ],
    )
    def test_corruption_raises_value_error(self, mutate):
        blob = codec.encode_configuration(random_blob_system(25, seed=6))
        with pytest.raises(ValueError):
            codec.decode_configuration(mutate(blob))
        with pytest.raises(ValueError):
            codec.validate_blob(mutate(blob))

    def test_validate_blob_accepts_good_frames_cheaply(self):
        blob = codec.encode_configuration(random_blob_system(25, seed=6))
        codec.validate_blob(blob)  # no exception, no decode

    def test_is_binary_blob(self):
        blob = codec.encode_configuration(random_blob_system(10, seed=1))
        assert codec.is_binary_blob(blob)
        assert not codec.is_binary_blob("{}")
        assert not codec.is_binary_blob(b"PK\x03\x04")


class TestCheckpointContainer:
    def payload(self):
        system = random_blob_system(18, seed=8)
        return {
            "version": 1,
            "key": "abc123",
            "final": codec.encode_configuration(system),
            "snapshots": [
                codec.encode_configuration(system),
                configuration_to_json(system, sort_nodes=False),  # mixed
            ],
            "iterations": 500,
            "accepted_moves": 41,
            "accepted_swaps": 7,
            "wall_time": 0.25,
        }

    def test_round_trip_preserves_scalars_and_items(self):
        payload = self.payload()
        decoded = codec.decode_checkpoint(codec.encode_checkpoint(payload))
        for key in ("version", "key", "iterations", "accepted_moves",
                    "accepted_swaps", "wall_time"):
            assert decoded[key] == payload[key]
        # Items come back *still encoded* — that is the lazy-decode
        # contract — and mixed bytes/str payloads survive unchanged.
        assert decoded["final"] == payload["final"]
        assert isinstance(decoded["snapshots"][0], bytes)
        assert decoded["snapshots"][1] == payload["snapshots"][1]

    def test_peek_meta_reads_scalars_without_items(self):
        meta = codec.peek_checkpoint_meta(
            codec.encode_checkpoint(self.payload())
        )
        assert meta["iterations"] == 500
        assert "final" not in meta

    def test_corrupt_container_raises_value_error(self):
        blob = codec.encode_checkpoint(self.payload())
        for bad in (blob[:12], blob[:-9], b"RBK2" + blob[4:]):
            with pytest.raises(ValueError):
                codec.decode_checkpoint(bad)

    def test_embedded_blob_corruption_fails_the_load(self):
        payload = self.payload()
        final = bytearray(payload["final"])
        final[-2] ^= 0xFF  # rot inside the nested configuration blob
        payload["final"] = bytes(final)
        with pytest.raises(ValueError):
            codec.decode_checkpoint(codec.encode_checkpoint(payload))


class TestTaskKeyMemoized:
    def test_key_is_computed_once_per_instance(self, monkeypatch):
        task = make_task()
        first = task.key()
        # With hashing forcibly broken, a second call must come from
        # the per-instance cache.
        import repro.experiments.parallel as parallel_module

        def boom(*args, **kwargs):
            raise AssertionError("key() re-hashed a memoized task")

        monkeypatch.setattr(parallel_module.hashlib, "sha256", boom)
        assert task.key() == first

    def test_equal_tasks_share_key_across_instances(self):
        assert make_task().key() == make_task().key()


class TestWarmSystemCache:
    def test_serial_cells_reuse_the_decoded_base_system(self):
        metrics = MetricsRegistry()
        obs = Instrumentation(metrics=metrics)
        # A fresh configuration (unique seed) so the first decode is a
        # guaranteed miss even though the cache is process-global.
        tasks = [
            make_task(n=24, seed=4321, steps=60, replica=r)
            for r in range(3)
        ]
        results = execute_cells(tasks, backend="serial", obs=obs)
        assert len(results) == 3
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["engine.system_cache_misses"] == 1.0
        assert snapshot["counters"]["engine.system_cache_hits"] == 2.0

    def test_process_pool_warms_workers(self):
        tasks = [
            make_task(n=20, seed=8765, steps=60, replica=r)
            for r in range(4)
        ]
        serial = execute_cells(tasks, backend="serial")
        process = execute_cells(tasks, backend="process", workers=2)
        for a, b in zip(serial, process):
            assert a.system.colors == b.system.colors


class TestLazySnapshotDecode:
    def test_binary_resume_defers_snapshot_decode(self, tmp_path, monkeypatch):
        task = make_task(steps=300, checkpoints=(100, 200))
        execute_cells([task], checkpoint_dir=tmp_path)

        calls = []
        real = codec.decode_configuration

        def counting(blob):
            calls.append(1)
            return real(blob)

        monkeypatch.setattr(codec, "decode_configuration", counting)
        (second,) = execute_cells(
            [task], checkpoint_dir=tmp_path, resume=True
        )
        assert second.from_checkpoint
        # Resume decoded only the final configuration, not the stack.
        assert len(calls) == 1
        snapshot = second.snapshots[0]
        assert isinstance(snapshot, ParticleSystem)
        assert len(calls) == 2
        # Cached thereafter.
        assert second.snapshots[0] is snapshot
        assert len(calls) == 2
        assert len(second.snapshots) == 2
        list(second.snapshots)
        assert len(calls) == 3

    def test_json_resume_keeps_eager_validation(self, tmp_path):
        task = make_task(steps=300, checkpoints=(150,))
        execute_cells([task], checkpoint_dir=tmp_path, codec="json")
        (second,) = execute_cells(
            [task], checkpoint_dir=tmp_path, resume=True, codec="json"
        )
        assert second.from_checkpoint
        assert all(
            isinstance(item, ParticleSystem)
            for item in second.snapshots._items
        )

    def test_lazy_snapshots_support_slices(self):
        systems = [random_blob_system(8, seed=s) for s in (1, 2, 3)]
        lazy = LazySnapshots(
            [codec.encode_configuration(s) for s in systems]
        )
        assert [s.colors for s in lazy[1:]] == [
            s.colors for s in systems[1:]
        ]


class TestCodecEquivalence:
    def test_binary_and_json_results_bit_identical(self, tmp_path):
        tasks = [
            make_task(seed=s, steps=250, checkpoints=(100,), replica=s)
            for s in (1, 2)
        ]
        binary = execute_cells(
            tasks, checkpoint_dir=tmp_path / "b", codec="binary"
        )
        jsonic = execute_cells(
            tasks, checkpoint_dir=tmp_path / "j", codec="json"
        )
        for a, b in zip(binary, jsonic):
            assert a.system.colors == b.system.colors
            assert a.accepted_moves == b.accepted_moves
            assert [s.colors for s in a.snapshots] == [
                s.colors for s in b.snapshots
            ]
        assert len(list((tmp_path / "b").glob("cell-*.bin"))) == 2
        assert len(list((tmp_path / "j").glob("cell-*.json"))) == 2

    def test_legacy_json_checkpoints_resume_under_binary_default(
        self, tmp_path
    ):
        tasks = [make_task(seed=s, steps=200) for s in (1, 2)]
        first = execute_cells(tasks, checkpoint_dir=tmp_path, codec="json")
        flags = []
        second = execute_cells(
            tasks,
            checkpoint_dir=tmp_path,
            resume=True,  # codec defaults to binary
            progress=lambda done, total, r: flags.append(r.from_checkpoint),
        )
        assert flags == [True, True]
        for a, b in zip(first, second):
            assert a.system.colors == b.system.colors

    def test_binary_checkpoints_resume_under_json_codec(self, tmp_path):
        task = make_task(steps=200)
        execute_cells([task], checkpoint_dir=tmp_path)  # writes .bin
        (second,) = execute_cells(
            [task], checkpoint_dir=tmp_path, resume=True, codec="json"
        )
        assert second.from_checkpoint

    def test_read_checkpoint_payload_handles_both_formats(self, tmp_path):
        task = make_task(steps=150)
        execute_cells([task], checkpoint_dir=tmp_path / "b")
        execute_cells([task], checkpoint_dir=tmp_path / "j", codec="json")
        for directory, suffix in ((tmp_path / "b", "binary"),
                                  (tmp_path / "j", "json")):
            payload = read_checkpoint_payload(
                checkpoint_path(directory, task, codec=suffix)
            )
            assert payload["iterations"] == task.steps
            assert payload["key"] == task.key()

    def test_invalid_codec_and_schedule_rejected(self):
        task = make_task(steps=50)
        with pytest.raises(ValueError):
            execute_cells([task], codec="msgpack")
        with pytest.raises(ValueError):
            execute_cells([task], schedule="random")


class TestCorruptBinaryCheckpoints:
    def test_truncated_checkpoint_recomputes_with_warning(self, tmp_path):
        task = make_task(steps=150)
        (first,) = execute_cells([task], checkpoint_dir=tmp_path)
        path = checkpoint_path(tmp_path, task)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.warns(RuntimeWarning, match="unusable checkpoint"):
            (second,) = execute_cells(
                [task], checkpoint_dir=tmp_path, resume=True
            )
        assert not second.from_checkpoint
        assert second.system.colors == first.system.colors

    def test_garbage_bytes_checkpoint_recomputes(self, tmp_path):
        task = make_task(steps=150)
        execute_cells([task], checkpoint_dir=tmp_path)
        checkpoint_path(tmp_path, task).write_bytes(b"\x00" * 64)
        with pytest.warns(RuntimeWarning, match="unusable checkpoint"):
            (result,) = execute_cells(
                [task], checkpoint_dir=tmp_path, resume=True
            )
        assert not result.from_checkpoint

    @pytest.mark.parametrize("backend,workers", [("serial", None),
                                                 ("process", 2)])
    def test_corrupt_binary_result_quarantined(
        self, tmp_path, backend, workers
    ):
        tasks = [
            make_task(seed=s, steps=120, replica=s, label=f"r{s}")
            for s in range(3)
        ]
        results = execute_cells(
            tasks,
            backend=backend,
            workers=workers,
            checkpoint_dir=tmp_path / "ckpt",
            retry=RetryPolicy(max_retries=0, backoff_base=0.0),
            failure=FailurePolicy(mode="quarantine"),
            fault_spec={
                "mode": "corrupt",
                "match": "r1",
                "times": 99,
                "dir": str(tmp_path / f"ledger-{backend}"),
            },
        )
        assert is_failed(results[1])
        assert results[1].kind == "validation"
        assert not is_failed(results[0]) and not is_failed(results[2])
        # The corrupt payload never reached the checkpoint directory.
        assert len(list((tmp_path / "ckpt").glob("cell-*.bin"))) == 2


class TestCostModel:
    def test_units_scale_with_steps_and_particles(self):
        small = make_task(n=10, steps=100)
        assert CostModel().units(small) == pytest.approx(100 * 10)
        assert CostModel().units(make_task(n=10, steps=200)) == (
            2 * CostModel().units(small)
        )

    def test_rate_refines_online(self):
        model = CostModel()
        task = make_task(n=10, steps=100)
        assert model.rate(task) == DEFAULT_RATE
        model.observe(task, seconds=0.01)
        first = model.rate(task)
        assert first == pytest.approx(0.01 / model.units(task))
        model.observe(task, seconds=0.02)
        refined = model.rate(task)
        assert first < refined < 0.02 / model.units(task)
        assert model.observations == 2

    def test_family_rate_isolated_from_other_configs(self):
        model = CostModel()
        a = make_task(n=10, seed=1, steps=100)
        b = make_task(n=40, seed=2, steps=100)
        model.observe(a, seconds=1.0)
        # b has no family observation; it falls back to the global rate.
        assert model.rate(b) == pytest.approx(model.rate(a))
        model.observe(b, seconds=0.001)
        assert model.rate(b) != pytest.approx(model.rate(a))

    def test_observe_publishes_metrics(self):
        metrics = MetricsRegistry()
        model = CostModel(metrics=metrics)
        model.observe(make_task(steps=100), seconds=0.5)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["engine.cost_model.observations"] == 1.0
        assert snapshot["gauges"]["engine.cost_model.us_per_unit"] > 0.0

    def test_prediction_orders_heterogeneous_sweep(self):
        model = CostModel()
        cheap = make_task(n=10, steps=100)
        costly = make_task(n=10, steps=100000)
        assert model.predict_seconds(costly) > model.predict_seconds(cheap)


class TestPlanChunks:
    def tasks(self, steps_list):
        return [
            make_task(seed=i, steps=steps, replica=i)
            for i, steps in enumerate(steps_list)
        ]

    def test_homogeneous_small_sweep_stays_singleton(self):
        task_list = self.tasks([500] * 4)
        groups = _plan_chunks(
            task_list, range(4), CostModel(), workers=2, chunk=0
        )
        assert groups == [[0], [1], [2], [3]]

    def test_cheap_tail_is_chunked_longest_first(self):
        task_list = self.tasks([100000] + [10] * 40)
        groups = _plan_chunks(
            task_list, range(41), CostModel(), workers=2, chunk=0
        )
        assert groups[0] == [0]  # the expensive cell leads, alone
        assert any(len(group) > 1 for group in groups[1:])
        assert all(len(group) <= 16 for group in groups)
        flat = [index for group in groups for index in group]
        assert sorted(flat) == list(range(41))

    def test_chunk_one_disables_packing(self):
        task_list = self.tasks([10] * 20)
        groups = _plan_chunks(
            task_list, range(20), CostModel(), workers=2, chunk=1
        )
        assert all(len(group) == 1 for group in groups)

    def test_explicit_chunk_caps_group_size(self):
        task_list = self.tasks([10] * 20)
        groups = _plan_chunks(
            task_list, range(20), CostModel(), workers=1, chunk=3
        )
        assert max(len(group) for group in groups) <= 3
        assert any(len(group) > 1 for group in groups)

    def test_planning_is_deterministic(self):
        task_list = self.tasks([100, 10, 5000, 10, 10])

        def plan():
            return _plan_chunks(
                task_list, range(5), CostModel(), workers=2, chunk=0
            )

        assert plan() == plan()


class TestScheduling:
    def test_fifo_and_cost_schedules_bit_identical(self):
        tasks = [
            make_task(seed=s, steps=steps, replica=s)
            for s, steps in enumerate((400, 50, 200))
        ]
        cost = execute_cells(tasks, schedule="cost")
        fifo = execute_cells(tasks, schedule="fifo")
        for a, b in zip(cost, fifo):
            assert a.system.colors == b.system.colors
            assert a.accepted_moves == b.accepted_moves

    def test_chunked_process_run_matches_serial(self, tmp_path):
        tasks = [
            make_task(seed=s, steps=40, replica=s, n=12)
            for s in range(12)
        ]
        serial = execute_cells(tasks, backend="serial")
        chunked = execute_cells(
            tasks,
            backend="process",
            workers=2,
            chunk=4,
            checkpoint_dir=tmp_path,
        )
        for a, b in zip(serial, chunked):
            assert a.system.colors == b.system.colors
        # Every cell still checkpoints individually.
        assert len(list(tmp_path.glob("cell-*.bin"))) == 12

    def test_worker_payload_carries_binary_system(self):
        task = make_task(steps=60)
        payload = task_payload(task, codec="binary")
        assert codec.is_binary_blob(payload["system"])
        result = run_cell(payload)
        assert codec.is_binary_blob(result["final"])
        json_payload = task_payload(task, codec="json")
        json_result = run_cell(json_payload)
        decoded = codec.decode_configuration(result["final"])
        from repro.util.serialization import configuration_from_json

        assert decoded.colors == configuration_from_json(
            json_result["final"]
        ).colors
