"""Tests for connectivity queries."""

import pytest

from repro.lattice.connectivity import (
    component_containing,
    connected_components,
    is_connected,
    is_simply_connected,
)
from repro.lattice.geometry import hexagon, line, ring


class TestIsConnected:
    def test_empty_and_singleton(self):
        assert is_connected(set())
        assert is_connected({(0, 0)})

    def test_hexagon_connected(self):
        assert is_connected(set(hexagon(19)))

    def test_two_distant_nodes_disconnected(self):
        assert not is_connected({(0, 0), (5, 5)})

    def test_diagonal_gap_disconnected(self):
        # (0,0) and (1,1) are not adjacent on the triangular lattice.
        assert not is_connected({(0, 0), (1, 1)})


class TestComponents:
    def test_single_component(self):
        assert len(connected_components(line(5))) == 1

    def test_three_components(self):
        nodes = {(0, 0), (1, 0), (10, 0), (20, 0), (21, 0), (22, 0)}
        components = connected_components(nodes)
        assert sorted(len(c) for c in components) == [1, 2, 3]

    def test_component_containing(self):
        nodes = {(0, 0), (1, 0), (10, 0)}
        assert component_containing(nodes, (0, 0)) == {(0, 0), (1, 0)}

    def test_component_containing_missing_node(self):
        with pytest.raises(ValueError):
            component_containing({(0, 0)}, (9, 9))


class TestSimplyConnected:
    def test_solid_hexagon(self):
        assert is_simply_connected(set(hexagon(19)))

    def test_ring_is_not(self):
        assert not is_simply_connected(set(ring((0, 0), 1)))

    def test_disconnected_is_not(self):
        assert not is_simply_connected({(0, 0), (5, 5)})
