"""Tests for the expand/contract-level amoebot simulator."""

import pytest

from repro.distributed.amoebot import AmoebotSimulator
from repro.system.initializers import hexagon_system, random_blob_system
from repro.system.observables import color_counts


class TestConstruction:
    def test_rejects_bad_parameters(self):
        system = hexagon_system(10, seed=0)
        with pytest.raises(ValueError):
            AmoebotSimulator(system, lam=0, gamma=1)

    def test_starts_quiescent(self):
        sim = AmoebotSimulator(hexagon_system(10, seed=0), lam=2, gamma=2)
        assert sim.is_quiescent()
        assert sim.expanded_count() == 0


class TestMechanics:
    def test_expansion_then_contraction(self):
        system = hexagon_system(12, seed=1)
        sim = AmoebotSimulator(system, lam=4, gamma=4, seed=1)
        # Drive activations until some particle expands.
        for _ in range(500):
            label = sim.activate()
            if label == "expanded":
                break
        else:
            pytest.fail("no expansion in 500 activations")
        assert sim.expanded_count() == 1
        sim.settle()
        assert sim.is_quiescent()

    def test_expanded_particle_occupies_two_nodes(self):
        system = hexagon_system(12, seed=2)
        sim = AmoebotSimulator(system, lam=10, gamma=1, seed=2)
        for _ in range(500):
            if sim.activate() == "expanded":
                break
        expanded = [p for p in sim.particles if p.is_expanded]
        assert len(expanded) == 1
        particle = expanded[0]
        assert sim._occupant[particle.head] == particle.pid
        assert sim._occupant[particle.tail] == particle.pid

    def test_bookkeeping_totals(self):
        system = random_blob_system(20, seed=3)
        sim = AmoebotSimulator(system, lam=3, gamma=3, seed=3)
        sim.run(5_000)
        sim.settle()
        assert sim.expansions == (
            sim.contractions_forward + sim.contractions_back
        )

    def test_negative_run_rejected(self):
        sim = AmoebotSimulator(hexagon_system(5, seed=0), lam=2, gamma=2)
        with pytest.raises(ValueError):
            sim.run(-5)


class TestInvariantsUnderInterleaving:
    """The locking discipline must keep connectivity and hole-freedom
    through heavily interleaved expansions — the failure mode the
    unguarded translation exhibits."""

    @pytest.mark.parametrize("seed", range(8))
    def test_quiescent_invariants(self, seed):
        system = random_blob_system(25, seed=seed)
        sim = AmoebotSimulator(system, lam=4.0, gamma=4.0, seed=seed)
        sim.run(15_000)
        sim.settle()
        assert sim.is_quiescent()
        system.validate()
        assert system.is_connected()
        assert not system.has_holes()

    def test_color_counts_conserved(self):
        system = hexagon_system(20, counts=[12, 8], seed=5)
        sim = AmoebotSimulator(system, lam=3.0, gamma=3.0, seed=5)
        sim.run(10_000)
        sim.settle()
        assert color_counts(system) == [12, 8]

    def test_system_colors_match_particle_records(self):
        system = random_blob_system(18, seed=6)
        sim = AmoebotSimulator(system, lam=4.0, gamma=2.0, seed=6)
        sim.run(8_000)
        sim.settle()
        from_particles = {p.head: p.color for p in sim.particles}
        assert from_particles == system.colors


class TestEmergentBehavior:
    def test_separation_still_emerges(self):
        """The expand/contract mechanics slow things down (locks and
        two-phase moves) but the same separation emerges."""
        system = hexagon_system(40, seed=7)
        before = system.hetero_total
        sim = AmoebotSimulator(system, lam=4.0, gamma=4.0, seed=7)
        sim.run(120_000)
        sim.settle()
        assert system.hetero_total < 0.6 * before

    def test_no_swap_mode(self):
        system = hexagon_system(20, seed=8)
        sim = AmoebotSimulator(system, lam=3, gamma=3, swaps=False, seed=8)
        sim.run(5_000)
        assert sim.accepted_swaps == 0
