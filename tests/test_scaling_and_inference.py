"""Tests for the finite-size scaling study and parameter inference."""

import math

import pytest

from repro.analysis.inference import (
    estimate_gamma_from_shape,
    estimate_gamma_pseudolikelihood,
    estimate_parameters,
    expected_h_at_gamma,
    gamma_pseudo_likelihood,
)
from repro.core.separation_chain import SeparationChain
from repro.experiments.scaling import (
    interface_scaling_exponent,
    scaling_study,
    scaling_table,
)
from repro.markov.chain import sample_observable
from repro.system.initializers import hexagon_system


class TestScalingStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return scaling_study(
            sizes=(30, 60, 120),
            steps_per_particle=1_500,
            replicas=2,
            seed=3,
        )

    def test_every_size_reported(self, study):
        assert [p.n for p in study] == [30, 60, 120]
        assert all(p.replicas == 2 for p in study)

    def test_all_runs_separate_in_budget(self, study):
        assert all(p.fraction_separated_in_budget == 1.0 for p in study)

    def test_alpha_concentrates_near_one(self, study):
        assert all(p.mean_alpha < 2.0 for p in study)

    def test_normalized_interface_bounded(self, study):
        """h/√n grows only mildly across a 4x size range (a fully
        integrated system would have h/√n ∝ √n, i.e. double)."""
        values = [p.mean_normalized_interface for p in study]
        assert max(values) < 3 * min(values)

    def test_interface_exponent_in_coarsening_regime(self, study):
        """At fixed per-particle budget the fitted h ~ n^b exponent sits
        in the coarsening band (≈1), not below the equilibrium 0.5 —
        interface merging slows with n (the §5 slow-mixing effect).
        Anything far above 1 would indicate the runs aren't even
        reaching the domain-forming stage."""
        exponent = interface_scaling_exponent(study)
        assert 0.4 <= exponent <= 1.35, exponent

    def test_table_renders(self, study):
        table = scaling_table(study)
        assert "alpha" in table and "120" in table

    def test_validates_replicas(self):
        with pytest.raises(ValueError):
            scaling_study(sizes=(10,), replicas=0)


class TestMomentInference:
    def test_expected_h_monotone_in_gamma(self):
        shapes = [hexagon_system(10, seed=s) for s in range(3)]
        values = [
            expected_h_at_gamma(shapes, gamma) for gamma in (0.5, 1.0, 3.0, 9.0)
        ]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_gamma_recovery_from_exact_moments(self):
        """Generate E[h] at a known γ, recover it by bisection."""
        shapes = [hexagon_system(12, seed=s) for s in range(2)]
        for true_gamma in (0.7, 2.0, 5.0):
            observed = expected_h_at_gamma(shapes, true_gamma)
            estimate = estimate_gamma_from_shape(shapes, observed)
            assert math.isclose(estimate, true_gamma, rel_tol=0.02)

    def test_joint_recovery_small_system(self):
        """Recover (λ, γ) from exact stationary moments at n = 4."""
        from repro.markov.exact import ExactChainAnalysis

        true_lam, true_gamma = 3.0, 2.0
        analysis = ExactChainAnalysis(4, [2, 2], lam=true_lam, gamma=true_gamma)
        perimeter = [float(s.perimeter()) for s in analysis.states]
        hetero = [float(s.hetero_total) for s in analysis.states]
        observed_p = analysis.expected_observable(perimeter)
        observed_h = analysis.expected_observable(hetero)
        lam, gamma = estimate_parameters(
            observed_p, observed_h, n=4, color_counts=[2, 2]
        )
        assert math.isclose(lam, true_lam, rel_tol=0.15)
        assert math.isclose(gamma, true_gamma, rel_tol=0.15)

    def test_out_of_range_observations_clamp(self):
        shapes = [hexagon_system(10, seed=0)]
        assert estimate_gamma_from_shape(shapes, observed_mean_h=1e9) == 0.05
        assert estimate_gamma_from_shape(shapes, observed_mean_h=-1.0) == 50.0


class TestPseudoLikelihood:
    def _sample_configurations(self, gamma, count=6, seed=11):
        system = hexagon_system(60, seed=seed)
        chain = SeparationChain(system, lam=4.0, gamma=gamma, seed=seed)
        return sample_observable(
            chain,
            observable=lambda: system.copy(),
            samples=count,
            thinning=15_000,
            burn_in=60_000,
        )

    def test_likelihood_concave_shape(self):
        samples = self._sample_configurations(gamma=2.0, count=3)
        values = [
            gamma_pseudo_likelihood(samples, math.log(g))
            for g in (0.3, 1.0, 2.0, 6.0, 20.0)
        ]
        peak = max(range(len(values)), key=values.__getitem__)
        assert 0 < peak < len(values) - 1, values

    @pytest.mark.parametrize("true_gamma", [1.0, 2.5])
    def test_gamma_recovered_within_factor(self, true_gamma):
        samples = self._sample_configurations(true_gamma)
        estimate = estimate_gamma_pseudolikelihood(samples)
        assert true_gamma / 1.7 <= estimate <= true_gamma * 1.7, estimate
