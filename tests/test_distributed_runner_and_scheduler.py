"""Tests for schedulers, conflict resolution, and distributed runners."""

import pytest

from repro.distributed.agent import MoveAction, NoAction, SwapAction
from repro.distributed.conflicts import resolve_expansion_conflicts
from repro.distributed.runner import ConcurrentRunner, DistributedRunner
from repro.distributed.scheduler import (
    PoissonScheduler,
    RoundRobinScheduler,
    UniformScheduler,
    make_scheduler,
    merge_activation_streams,
)
from repro.system.initializers import hexagon_system, random_blob_system
from repro.system.observables import color_counts


class TestSchedulers:
    def test_uniform_in_range(self):
        scheduler = UniformScheduler(10, seed=0)
        samples = [scheduler.next_active() for _ in range(1000)]
        assert set(samples) <= set(range(10))
        assert len(set(samples)) == 10  # all particles eventually chosen

    def test_poisson_time_increases(self):
        scheduler = PoissonScheduler(5, seed=0)
        times = []
        for _ in range(100):
            scheduler.next_active()
            times.append(scheduler.current_time)
        assert times == sorted(times)

    def test_poisson_activation_rate_roughly_uniform(self):
        scheduler = PoissonScheduler(4, seed=1)
        counts = [0] * 4
        for _ in range(8000):
            counts[scheduler.next_active()] += 1
        assert max(counts) < 1.3 * min(counts)

    def test_round_robin_covers_everyone_each_round(self):
        scheduler = RoundRobinScheduler(6, seed=0)
        first_round = [scheduler.next_active() for _ in range(6)]
        assert sorted(first_round) == list(range(6))
        assert scheduler.rounds_completed == 1

    def test_round_robin_fixed_order(self):
        scheduler = RoundRobinScheduler(4, reshuffle=False, seed=0)
        round1 = [scheduler.next_active() for _ in range(4)]
        round2 = [scheduler.next_active() for _ in range(4)]
        assert round1 == round2 == [0, 1, 2, 3]

    def test_factory(self):
        assert isinstance(make_scheduler("uniform", 3), UniformScheduler)
        assert isinstance(make_scheduler("poisson", 3), PoissonScheduler)
        assert isinstance(make_scheduler("round-robin", 3), RoundRobinScheduler)
        with pytest.raises(ValueError):
            make_scheduler("quantum", 3)

    def test_validates_num_particles(self):
        with pytest.raises(ValueError):
            UniformScheduler(0)

    def test_merge_activation_streams_ordered(self):
        streams = [PoissonScheduler(3, seed=i) for i in range(2)]
        merged = merge_activation_streams(streams, 50)
        times = [t for t, _, _ in merged]
        assert times == sorted(times)
        assert len(merged) == 50


class TestConflictResolution:
    def test_two_moves_same_destination(self):
        colors = {(0, 0): 0, (1, 0): 0, (0, 1): 1, (2, 0): 1, (1, -1): 0}
        target = (1, 1)
        proposed = [
            (0, MoveAction(src=(0, 1), dst=target)),
            (1, MoveAction(src=(2, 0), dst=target)),
        ]
        applied, dropped = resolve_expansion_conflicts(colors, proposed)
        assert len(applied) == 1
        assert len(dropped) == 1
        assert "occupied" in dropped[0][2]

    def test_noactions_ignored(self):
        colors = {(0, 0): 0}
        applied, dropped = resolve_expansion_conflicts(
            colors, [(0, NoAction("nope"))]
        )
        assert applied == [] and dropped == []

    def test_swap_invalidated_by_earlier_move(self):
        colors = {(0, 0): 0, (1, 0): 1, (0, 1): 0, (1, -1): 1}
        proposed = [
            (0, SwapAction(a=(0, 0), b=(1, 0))),
            (1, SwapAction(a=(1, 0), b=(0, 0))),
        ]
        applied, dropped = resolve_expansion_conflicts(colors, proposed)
        # After the first swap the pair's colors are exchanged; the
        # second swap is still *feasible* (colors still differ), so both
        # may apply — the point is no crash and consistent bookkeeping.
        assert len(applied) + len(dropped) == 2


class TestDistributedRunner:
    def test_invariants_preserved(self):
        system = random_blob_system(30, seed=4)
        runner = DistributedRunner(system, lam=4.0, gamma=4.0, seed=4)
        runner.run(10_000)
        system.validate()
        assert system.is_connected()
        assert not system.has_holes()

    def test_color_counts_conserved(self):
        system = hexagon_system(24, counts=[14, 10], seed=2)
        runner = DistributedRunner(system, lam=3.0, gamma=3.0, seed=2)
        runner.run(5000)
        assert color_counts(system) == [14, 10]

    def test_negative_steps_rejected(self):
        runner = DistributedRunner(hexagon_system(5, seed=0), lam=2, gamma=2)
        with pytest.raises(ValueError):
            runner.run(-1)

    def test_acceptance_rate_and_rejection_reasons(self):
        system = hexagon_system(20, seed=1)
        runner = DistributedRunner(system, lam=4.0, gamma=4.0, seed=1)
        runner.run(3000)
        assert 0 < runner.acceptance_rate() < 1
        assert runner.rejections  # at least one rejection reason recorded

    def test_alternative_schedulers_preserve_invariants(self):
        for kind in ("poisson", "round-robin"):
            system = random_blob_system(20, seed=6)
            runner = DistributedRunner(
                system,
                lam=3.0,
                gamma=2.0,
                scheduler=make_scheduler(kind, 20, seed=6),
                seed=6,
            )
            runner.run(5000)
            system.validate()
            assert system.is_connected()
            assert not system.has_holes()

    def test_separation_progresses(self):
        system = hexagon_system(40, seed=8)
        before = system.hetero_total
        runner = DistributedRunner(system, lam=4.0, gamma=4.0, seed=8)
        runner.run(60_000)
        assert system.hetero_total < before


class TestConcurrentRunner:
    def test_rounds_preserve_invariants(self):
        system = random_blob_system(30, seed=9)
        runner = ConcurrentRunner(system, lam=4.0, gamma=4.0, round_size=8, seed=9)
        runner.run(1500)
        system.validate()
        assert system.is_connected()
        assert not system.has_holes()

    def test_conflicts_are_rare_but_counted(self):
        system = random_blob_system(40, seed=10)
        runner = ConcurrentRunner(
            system, lam=4.0, gamma=4.0, round_size=20, seed=10
        )
        runner.run(1000)
        assert runner.applied_actions > 0
        assert runner.conflicts_dropped >= 0
        assert runner.rounds == 1000

    def test_round_size_validation(self):
        with pytest.raises(ValueError):
            ConcurrentRunner(hexagon_system(5, seed=0), 2, 2, round_size=0)

    def test_round_size_capped_at_n(self):
        runner = ConcurrentRunner(
            hexagon_system(5, seed=0), 2, 2, round_size=50
        )
        assert runner.round_size == 5
