"""Tests for initial-configuration generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.system.initializers import (
    checkerboard_system,
    hexagon_system,
    line_system,
    random_blob_system,
    separated_system,
)
from repro.system.observables import color_counts


class TestHexagonSystem:
    def test_balanced_colors(self):
        system = hexagon_system(100, seed=0)
        assert color_counts(system) == [50, 50]

    def test_explicit_counts(self):
        system = hexagon_system(10, counts=[7, 3], seed=0)
        assert color_counts(system) == [7, 3]

    def test_bad_counts_raise(self):
        with pytest.raises(ValueError):
            hexagon_system(10, counts=[5, 4])

    def test_seed_reproducibility(self):
        a = hexagon_system(30, seed=42)
        b = hexagon_system(30, seed=42)
        assert a.colors == b.colors

    def test_connected_hole_free(self):
        system = hexagon_system(77, seed=1)
        assert system.is_connected()
        assert not system.has_holes()


class TestLineSystem:
    def test_line_perimeter_is_maximal(self):
        system = line_system(15, seed=0)
        assert system.perimeter() == 2 * (15 - 1)

    def test_three_colors(self):
        system = line_system(9, num_colors=3, seed=0)
        assert color_counts(system) == [3, 3, 3]


class TestSeparatedSystem:
    def test_fully_separated_start(self):
        system = separated_system(36)
        assert system.is_connected()
        # Contiguous color bands: the heterogeneous interface is small.
        assert system.hetero_total <= 2 * (36 ** 0.5) + 6

    def test_three_color_bands(self):
        system = separated_system(30, num_colors=3)
        assert color_counts(system) == [10, 10, 10]

    def test_too_few_particles_raise(self):
        with pytest.raises(ValueError):
            separated_system(1, num_colors=2)


class TestCheckerboard:
    def test_alternating_counts(self):
        system = checkerboard_system(10)
        assert color_counts(system) == [5, 5]

    def test_highly_heterogeneous(self):
        mixed = checkerboard_system(50)
        separated = separated_system(50)
        assert mixed.hetero_total > separated.hetero_total


class TestRandomBlob:
    @given(st.integers(min_value=1, max_value=60), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_blob_invariants(self, n, seed):
        system = random_blob_system(n, seed=seed)
        assert system.n == n
        assert system.is_connected()
        assert not system.has_holes()

    def test_blob_reproducible(self):
        a = random_blob_system(40, seed=9)
        b = random_blob_system(40, seed=9)
        assert a.colors == b.colors

    def test_blob_different_seeds_differ(self):
        a = random_blob_system(40, seed=1)
        b = random_blob_system(40, seed=2)
        assert a.colors != b.colors
