"""Tests for interface-geometry observables."""

import math

from repro.analysis.interfaces import (
    centroid_separation,
    color_geometry,
    demixing_index,
    interface_component_count,
    interface_edges,
    interface_summary,
)
from repro.system.configuration import ParticleSystem
from repro.system.initializers import checkerboard_system, separated_system


def sorted_line(n, colors):
    return ParticleSystem.from_nodes([(i, 0) for i in range(n)], colors)


class TestInterfaceEdges:
    def test_count_matches_hetero_total(self):
        for system in (separated_system(36), checkerboard_system(36)):
            assert len(interface_edges(system)) == system.hetero_total

    def test_single_interface_on_sorted_line(self):
        system = sorted_line(8, [0, 0, 0, 0, 1, 1, 1, 1])
        assert len(interface_edges(system)) == 1
        assert interface_component_count(system) == 1

    def test_alternating_line_is_one_chained_component(self):
        """Adjacent heterogeneous edges share endpoints, so a fully
        alternating line has ONE long interface component — length, not
        component count, is what distinguishes it from separation."""
        system = sorted_line(8, [0, 1, 0, 1, 0, 1, 0, 1])
        assert interface_component_count(system) == 1
        assert len(interface_edges(system)) == 7

    def test_separated_stripes_give_disjoint_components(self):
        system = sorted_line(8, [0, 0, 1, 1, 0, 0, 1, 1])
        assert interface_component_count(system) == 3

    def test_monochromatic_has_none(self):
        system = sorted_line(6, [0] * 6)
        assert interface_edges(system) == []
        assert interface_component_count(system) == 0


class TestColorGeometry:
    def test_centroid_of_line_halves(self):
        system = sorted_line(10, [0] * 5 + [1] * 5)
        left = color_geometry(system, 0)
        right = color_geometry(system, 1)
        assert left.count == right.count == 5
        assert left.centroid[0] < right.centroid[0]

    def test_missing_color(self):
        system = sorted_line(4, [0] * 4)
        geometry = color_geometry(system, 1)
        assert geometry.count == 0
        assert geometry.radius_of_gyration == 0.0

    def test_gyration_grows_with_spread(self):
        compact = separated_system(36)
        line = sorted_line(36, [0] * 18 + [1] * 18)
        assert (
            color_geometry(line, 0).radius_of_gyration
            > color_geometry(compact, 0).radius_of_gyration
        )


class TestCentroidSeparation:
    def test_separated_larger_than_checkerboard(self):
        assert centroid_separation(separated_system(64)) > (
            centroid_separation(checkerboard_system(64))
        )

    def test_monochromatic_is_zero(self):
        assert centroid_separation(sorted_line(5, [0] * 5)) == 0.0


class TestDemixingIndex:
    def test_bounds(self):
        for system in (separated_system(36), checkerboard_system(36)):
            assert 0.0 <= demixing_index(system) <= 1.0

    def test_ordering(self):
        assert demixing_index(separated_system(64)) > 0.6
        assert demixing_index(checkerboard_system(64)) < 0.3

    def test_single_particle(self):
        assert demixing_index(ParticleSystem.from_nodes([(0, 0)], [0])) == 0.0


class TestSummary:
    def test_keys_and_consistency(self):
        system = separated_system(49)
        summary = interface_summary(system)
        assert set(summary) == {
            "length",
            "components",
            "normalized_length",
            "centroid_separation",
        }
        assert summary["length"] == system.hetero_total
        assert math.isclose(
            summary["normalized_length"], system.hetero_total / 7.0
        )
