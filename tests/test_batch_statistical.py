"""Statistical-equivalence suite: batch kernel vs. the scalar dict kernel.

The replica-batched NumPy kernel (:mod:`repro.core.batch_kernel`) consumes
its randomness through per-replica ``numpy`` PCG64 streams, while the
scalar kernels draw from ``random.Random``; the two are therefore
*statistically* equivalent samplers of the same Markov chain, not bit-wise
identical ones.  This file pins down both halves of that claim:

**Exactness tests** — properties that must hold bit-for-bit:

- the speculative window is an implementation detail: ``window=1`` (the
  sequential reference, which evaluates one proposal at a time) and the
  default wide window produce identical trajectories for the same seeds;
- grouping invariance: one R-replica kernel seeded with a per-replica
  seed list equals R independent single-replica kernels — the property
  that makes :class:`~repro.experiments.parallel.BatchRunner`'s task
  grouping sound;
- the incremental edge/heterogeneous-edge counters agree with
  from-scratch recomputation on exported systems.

**Statistical tests** — ensemble moments of the paper's observables
(perimeter, heterogeneous edges, compression ratio :math:`\\alpha`,
largest monochromatic cluster fraction) must match the dict kernel within
tolerance bands at two :math:`(\\lambda, \\gamma)` points spanning the
separated (:math:`\\lambda=\\gamma=4`) and integrated
(:math:`\\lambda=4, \\gamma=0.5`) regimes.  Seeds are fixed, so the tests
are deterministic; the bands are a few pooled standard errors wide plus a
KS-style cap on the empirical-CDF distance.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.compression_metric import alpha_of
from repro.core.batch_kernel import BatchKernel, DEFAULT_WINDOW
from repro.core.separation_chain import SeparationChain
from repro.system.initializers import random_blob_system
from repro.system.observables import (
    edge_count_scratch,
    heterogeneous_edge_count_scratch,
    largest_cluster_fraction,
)

N = 48
SEED_BASE = 7100


def _make_system():
    # One fixed initial configuration shared by every ensemble member so
    # the comparison isolates the kernels' dynamics.
    return random_blob_system(N, seed=2018)


def _observe(system):
    return (
        float(system.perimeter()),
        float(system.hetero_total),
        float(alpha_of(system)),
        float(largest_cluster_fraction(system)),
    )


OBS_NAMES = ("perimeter", "het_edges", "alpha", "largest_cluster_fraction")


def _ensemble_dict(lam, gamma, seeds, steps, swaps=True):
    rows = []
    for seed in seeds:
        system = _make_system()
        chain = SeparationChain(
            system, lam=lam, gamma=gamma, seed=seed, swaps=swaps, backend="dict"
        )
        chain.run(steps)
        rows.append(_observe(system))
    return np.asarray(rows)


def _ensemble_batch(lam, gamma, seeds, steps, swaps=True):
    system = _make_system()
    kernel = BatchKernel(
        system, lam, gamma, replicas=len(seeds), seed=list(seeds), swaps=swaps
    )
    kernel.run(steps)
    return np.asarray(
        [_observe(kernel.export_system(r)) for r in range(len(seeds))]
    )


def _ks_distance(a, b):
    """Two-sample Kolmogorov-Smirnov statistic (no SciPy dependency)."""
    a = np.sort(a)
    b = np.sort(b)
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


class TestExactness:
    """Bit-level properties of the speculative-window implementation."""

    def test_window_one_matches_default_window(self):
        """The wide speculative window is a pure optimization.

        ``window=1`` evaluates a single proposal per vectorized pass —
        the sequential reference — so identical seeds must give identical
        trajectories regardless of window width.
        """
        seeds = list(range(SEED_BASE, SEED_BASE + 4))
        base = _make_system()
        k1 = BatchKernel(base, 4.0, 4.0, replicas=4, seed=seeds, window=1)
        kw = BatchKernel(_make_system(), 4.0, 4.0, replicas=4, seed=seeds,
                         window=DEFAULT_WINDOW)
        k1.run(4000)
        kw.run(4000)
        assert np.array_equal(k1.edge, kw.edge)
        assert np.array_equal(k1.het, kw.het)
        assert np.array_equal(k1.acc_moves, kw.acc_moves)
        assert np.array_equal(k1.acc_swaps, kw.acc_swaps)
        for r in range(4):
            assert sorted(k1.positions(r)) == sorted(kw.positions(r))

    def test_grouping_invariance(self):
        """R-replica kernel == R single-replica kernels (same seed list)."""
        seeds = list(range(SEED_BASE, SEED_BASE + 6))
        grouped = BatchKernel(_make_system(), 4.0, 2.0, replicas=6, seed=seeds)
        grouped.run(3000)
        for r, seed in enumerate(seeds):
            solo = BatchKernel(_make_system(), 4.0, 2.0, replicas=1, seed=[seed])
            solo.run(3000)
            assert int(solo.edge[0]) == int(grouped.edge[r])
            assert int(solo.het[0]) == int(grouped.het[r])
            assert sorted(solo.positions(0)) == sorted(grouped.positions(r))

    @pytest.mark.parametrize("swaps", [True, False])
    def test_incremental_counters_match_scratch(self, swaps):
        seeds = list(range(SEED_BASE, SEED_BASE + 4))
        kernel = BatchKernel(
            _make_system(), 4.0, 4.0, replicas=4, seed=seeds, swaps=swaps
        )
        kernel.run(5000)
        for r in range(4):
            system = kernel.export_system(r)
            assert int(kernel.edge[r]) == edge_count_scratch(system)
            assert int(kernel.het[r]) == heterogeneous_edge_count_scratch(system)
            assert int(kernel.perimeters()[r]) == system.perimeter()
            assert system.is_connected()
            assert not system.has_holes()


@pytest.mark.parametrize(
    "lam,gamma,regime",
    [
        (4.0, 4.0, "separated"),
        (4.0, 0.5, "integrated"),
    ],
)
class TestMomentMatching:
    """Ensemble moments of batch vs. dict kernels at matched parameters.

    Both ensembles start from the same configuration and run the same
    number of steps, so any systematic discrepancy in the dynamics would
    shift the ensemble means apart.  The band is
    ``3 * pooled standard error + epsilon`` — wide enough to be stable
    under the fixed seeds, tight enough to catch a broken acceptance
    ratio (which moves means by many standard deviations).
    """

    REPLICAS = 16
    STEPS = 15_000
    _cache: dict = {}

    def _ensembles(self, lam, gamma):
        key = (lam, gamma)
        if key not in self._cache:
            seeds_b = [SEED_BASE + 10 * i for i in range(self.REPLICAS)]
            seeds_d = [SEED_BASE + 10 * i + 5 for i in range(self.REPLICAS)]
            batch = _ensemble_batch(lam, gamma, seeds_b, self.STEPS)
            ref = _ensemble_dict(lam, gamma, seeds_d, self.STEPS)
            self._cache[key] = (batch, ref)
        return self._cache[key]

    def test_means_within_tolerance(self, lam, gamma, regime):
        batch, ref = self._ensembles(lam, gamma)
        for j, name in enumerate(OBS_NAMES):
            mb, md = batch[:, j].mean(), ref[:, j].mean()
            se = math.sqrt(
                batch[:, j].var(ddof=1) / batch.shape[0]
                + ref[:, j].var(ddof=1) / ref.shape[0]
            )
            eps = 0.05 * max(abs(md), 1.0)
            assert abs(mb - md) <= 3.0 * se + eps, (
                f"{regime} {name}: batch mean {mb:.3f} vs dict mean {md:.3f} "
                f"(band {3.0 * se + eps:.3f})"
            )

    def test_ks_distance_within_tolerance(self, lam, gamma, regime):
        batch, ref = self._ensembles(lam, gamma)
        n1 = batch.shape[0]
        n2 = ref.shape[0]
        # KS critical value at alpha=0.001 for a smoke-level gate.
        crit = 1.95 * math.sqrt((n1 + n2) / (n1 * n2))
        for j, name in enumerate(OBS_NAMES):
            d = _ks_distance(batch[:, j], ref[:, j])
            assert d <= crit, (
                f"{regime} {name}: KS distance {d:.3f} exceeds {crit:.3f}"
            )

    def test_regime_signature(self, lam, gamma, regime):
        """Sanity check that the two parameter points really span regimes."""
        batch, _ = self._ensembles(lam, gamma)
        lcf = batch[:, 3].mean()
        if regime == "separated":
            assert lcf > 0.35
        else:
            assert lcf < 0.35
