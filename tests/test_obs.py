"""Tests for the observability subsystem (logs, metrics, trace, progress)."""

import io
import json
import math
import os

import pytest

from repro.core.separation_chain import SeparationChain
from repro.experiments.parallel import CellTask, execute_cells
from repro.experiments.recorder import RunRecorder
from repro.obs import (
    Instrumentation,
    JsonLogger,
    MetricsRegistry,
    ProgressReporter,
    TraceRecorder,
    merge_records,
    read_jsonl,
    run_profiled,
    validate_trace,
)
from repro.obs.metrics import Histogram
from repro.system.initializers import random_blob_system
from repro.util.serialization import configuration_to_json


# ---------------------------------------------------------------------------
# JSON-lines logging


class TestJsonLogger:
    def test_stream_sink_writes_json_lines(self):
        stream = io.StringIO()
        logger = JsonLogger(stream, context={"run": "t"}, clock=lambda: 1.5)
        logger.info("hello", value=3)
        record = json.loads(stream.getvalue())
        assert record["event"] == "hello"
        assert record["run"] == "t"
        assert record["value"] == 3
        assert record["ts"] == 1.5
        assert record["pid"] == os.getpid()

    def test_bind_layers_context(self):
        logger = JsonLogger.collecting(context={"run": "sweep"})
        child = logger.bind(cell="c1", replica=2)
        child.info("cell.done")
        (record,) = logger.records
        assert record["run"] == "sweep"
        assert record["cell"] == "c1"
        assert record["replica"] == 2

    def test_level_filtering(self):
        logger = JsonLogger.collecting(level="warning")
        logger.debug("quiet")
        logger.info("quiet")
        logger.warning("loud")
        assert [r["event"] for r in logger.records] == ["loud"]

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            JsonLogger.collecting(level="chatty")
        with pytest.raises(ValueError):
            JsonLogger.collecting().log("x", level="loudest")

    def test_open_appends_and_read_jsonl_round_trips(self, tmp_path):
        path = tmp_path / "sub" / "events.jsonl"
        logger = JsonLogger.open(path, clock=lambda: 2.0)
        logger.info("first")
        logger.close()
        logger = JsonLogger.open(path, clock=lambda: 3.0)
        logger.info("second")
        logger.close()
        events = [r["event"] for r in read_jsonl(path)]
        assert events == ["first", "second"]

    def test_records_requires_list_sink(self):
        with pytest.raises(TypeError):
            JsonLogger(io.StringIO()).records


class TestMergeRecords:
    def test_orders_by_timestamp(self):
        parent = [{"ts": 1.0, "event": "a"}, {"ts": 5.0, "event": "d"}]
        worker = [{"ts": 2.0, "event": "b"}, {"ts": 3.0, "event": "c"}]
        merged = merge_records(parent, worker)
        assert [r["event"] for r in merged] == ["a", "b", "c", "d"]

    def test_stable_within_stream_on_ties(self):
        # Equal timestamps must keep within-stream order, and the
        # earlier stream must win the tie — causal order inside one
        # process is never flipped by the merge.
        first = [{"ts": 1.0, "event": "a1"}, {"ts": 1.0, "event": "a2"}]
        second = [{"ts": 1.0, "event": "b1"}]
        merged = merge_records(first, second)
        assert [r["event"] for r in merged] == ["a1", "a2", "b1"]


# ---------------------------------------------------------------------------
# Metrics registry


class TestHistogram:
    def test_boundary_lands_in_lower_bucket(self):
        histogram = Histogram("h", [1.0, 2.0, 4.0])
        histogram.observe(1.0)  # boundary -> first bucket (le semantics)
        histogram.observe(1.5)
        histogram.observe(2.0)  # boundary -> second bucket
        assert histogram.counts == [1, 2, 0, 0]

    def test_overflow_bucket(self):
        histogram = Histogram("h", [1.0, 2.0])
        histogram.observe(100.0)
        assert histogram.counts == [0, 0, 1]
        assert histogram.count == 1
        assert histogram.sum == 100.0

    def test_mean(self):
        histogram = Histogram("h", [10.0])
        assert math.isnan(histogram.mean())
        histogram.observe(2.0)
        histogram.observe(4.0)
        assert histogram.mean() == 3.0

    def test_invalid_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", [])
        with pytest.raises(ValueError):
            Histogram("h", [1.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("h", [2.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("h", [1.0, float("inf")])


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.series("s") is registry.series("s")

    def test_cross_kind_name_conflict(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_snapshot_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("steps").inc(42)
        registry.gauge("perimeter").set(17.5)
        registry.histogram("t", [0.1, 1.0]).observe(0.5)
        registry.series("cells").append({"cell": "a", "wall": 0.5})
        snapshot = registry.snapshot()
        # Snapshot must be strict JSON (no NaN/inf leaks).
        restored = MetricsRegistry.from_snapshot(
            json.loads(json.dumps(snapshot, allow_nan=False))
        )
        assert restored.snapshot() == snapshot

    def test_from_snapshot_rejects_unknown_version(self):
        with pytest.raises(ValueError):
            MetricsRegistry.from_snapshot({"version": 99})

    def test_merge_semantics(self):
        parent = MetricsRegistry()
        parent.counter("steps").inc(10)
        parent.gauge("rate").set(1.0)
        parent.histogram("t", [1.0]).observe(0.5)
        parent.series("cells").append("a")

        worker = MetricsRegistry()
        worker.counter("steps").inc(5)
        worker.gauge("rate").set(2.0)
        worker.histogram("t", [1.0]).observe(3.0)
        worker.series("cells").append("b")

        parent.merge(worker.snapshot())
        snapshot = parent.snapshot()
        assert snapshot["counters"]["steps"] == 15.0  # counters add
        assert snapshot["gauges"]["rate"] == 2.0  # last write wins
        assert snapshot["histograms"]["t"]["counts"] == [1, 1]
        assert snapshot["histograms"]["t"]["count"] == 2
        assert snapshot["series"]["cells"] == ["a", "b"]  # concat

    def test_series_extend_is_ordered_concat(self):
        series = MetricsRegistry().series("s")
        series.append({"i": 0})
        series.extend([{"i": 1}, {"i": 2}])
        assert [e["i"] for e in series.entries] == [0, 1, 2]

    def test_merge_series_of_differing_lengths(self):
        """Series collisions: ordered concat, no alignment or truncation.

        The combined order is determined purely by the sequence of
        merge calls — existing entries keep their positions, each
        snapshot's entries follow in their recorded order.
        """
        parent = MetricsRegistry()
        parent.series("diag.samples").append("p0")

        short = MetricsRegistry()
        short.series("diag.samples").append("s0")
        long = MetricsRegistry()
        for i in range(3):
            long.series("diag.samples").append(f"l{i}")

        parent.merge(long.snapshot())
        parent.merge(short.snapshot())
        assert parent.snapshot()["series"]["diag.samples"] == [
            "p0", "l0", "l1", "l2", "s0",
        ]
        # Deterministic: replaying the same merge order reproduces it.
        replay = MetricsRegistry()
        replay.series("diag.samples").append("p0")
        replay.merge(long.snapshot())
        replay.merge(short.snapshot())
        assert replay.snapshot() == parent.snapshot()

    def test_merge_series_new_name_created(self):
        parent = MetricsRegistry()
        worker = MetricsRegistry()
        worker.series("only.worker").append(1)
        parent.merge(worker.snapshot())
        assert parent.snapshot()["series"]["only.worker"] == [1]

    def test_merge_rejects_mismatched_buckets(self):
        parent = MetricsRegistry()
        parent.histogram("t", [1.0, 2.0])
        worker = MetricsRegistry()
        worker.histogram("t", [1.0, 5.0])
        with pytest.raises(ValueError):
            parent.merge(worker.snapshot())

    def test_save_load(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        path = tmp_path / "out" / "metrics.json"
        registry.save(path)
        assert MetricsRegistry.load(path).snapshot() == registry.snapshot()


# ---------------------------------------------------------------------------
# Trace spans


class TestTraceRecorder:
    def test_span_nesting_and_schema(self):
        ticks = iter(range(100))
        recorder = TraceRecorder(
            process_name="repro-test", clock=lambda: next(ticks)
        )
        with recorder.span("outer", phase="sweep"):
            with recorder.span("inner"):
                pass
        document = recorder.to_json()
        validate_trace(document)
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        # Spans close inner-first; the outer span must time-contain the
        # inner one (that is how the viewer stacks them).
        inner, outer = complete
        assert inner["name"] == "inner"
        assert outer["name"] == "outer"
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]
        assert outer["args"] == {"phase": "sweep"}

    def test_span_records_on_exception(self):
        recorder = TraceRecorder()
        with pytest.raises(RuntimeError):
            with recorder.span("doomed"):
                raise RuntimeError("boom")
        assert [e["name"] for e in recorder.events] == ["doomed"]

    def test_metadata_event_names_process(self):
        recorder = TraceRecorder(process_name="repro-worker")
        meta = recorder.events[0]
        assert meta["ph"] == "M"
        assert meta["args"] == {"name": "repro-worker"}

    def test_extend_keeps_foreign_pids(self):
        parent = TraceRecorder()
        parent.extend(
            [{"name": "cell", "cat": "x", "ph": "X", "ts": 0.0, "dur": 1.0,
              "pid": 99999, "tid": 1}]
        )
        assert parent.events[-1]["pid"] == 99999
        validate_trace(parent.to_json())

    def test_save_is_viewer_loadable_json(self, tmp_path):
        recorder = TraceRecorder(process_name="repro")
        with recorder.span("work"):
            pass
        path = tmp_path / "trace.json"
        recorder.save(path)
        document = json.loads(path.read_text())
        validate_trace(document)
        assert document["displayTimeUnit"] == "ms"

    def test_validate_trace_rejects_bad_documents(self):
        with pytest.raises(ValueError):
            validate_trace({})
        with pytest.raises(ValueError):
            validate_trace({"traceEvents": [{"ph": "X", "name": "partial"}]})
        with pytest.raises(ValueError):
            validate_trace({"traceEvents": [{"ph": "Z"}]})
        with pytest.raises(ValueError):
            validate_trace(
                {"traceEvents": [
                    {"name": "n", "ph": "X", "ts": 0, "dur": -1,
                     "pid": 1, "tid": 1}
                ]}
            )


# ---------------------------------------------------------------------------
# Progress / heartbeat / profiling


class TestProgressReporter:
    def test_progress_line_contents(self):
        stream = io.StringIO()
        clock = iter([0.0, 2.0, 4.0]).__next__
        reporter = ProgressReporter(stream=stream, clock=clock)
        reporter(1, 4)
        reporter(2, 4)
        lines = stream.getvalue().splitlines()
        assert "cells 1/4 (25%)" in lines[0]
        assert "cells 2/4 (50%)" in lines[1]
        assert "ewma 2.00s" in lines[1]
        assert "eta 4.0s" in lines[1]

    def test_result_detail_and_checkpoint_tag(self):
        class Result:
            wall_time = 2.0
            iterations = 10_000
            from_checkpoint = True
            task = None

        stream = io.StringIO()
        clock = iter([0.0, 1.0]).__next__
        reporter = ProgressReporter(stream=stream, clock=clock)
        reporter(1, 1, Result())
        line = stream.getvalue()
        assert "cell 2.00s" in line
        assert "5,000 steps/s" in line
        assert "[checkpoint]" in line

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            ProgressReporter(smoothing=0.0)
        with pytest.raises(ValueError):
            ProgressReporter(smoothing=1.5)

    def test_heartbeat_emits_and_stops(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream)
        with reporter:
            reporter.start_heartbeat(0.02)
            reporter._stop.wait(0.2)  # give the thread time to beat
        assert "heartbeat" in stream.getvalue()
        assert reporter._heartbeat_thread is None
        reporter.stop()  # idempotent

    def test_heartbeat_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            ProgressReporter().start_heartbeat(0)


class TestRunProfiled:
    def test_returns_result_and_report(self):
        def work(x):
            return sum(range(x))

        result, report = run_profiled(work, 100)
        assert result == sum(range(100))
        assert "cumulative" in report


# ---------------------------------------------------------------------------
# Instrumentation bundle


class TestInstrumentation:
    def test_disabled_by_default(self):
        obs = Instrumentation()
        assert not obs.enabled()
        obs.log("ignored")  # no-op, no error
        with obs.span("ignored"):
            pass

    def test_bind_rebinds_logger_only(self):
        logger = JsonLogger.collecting()
        metrics = MetricsRegistry()
        obs = Instrumentation(logger=logger, metrics=metrics)
        bound = obs.bind(run="sweep")
        assert bound.metrics is metrics
        bound.log("event")
        assert logger.records[0]["run"] == "sweep"

    def test_worker_flags(self):
        obs = Instrumentation(metrics=MetricsRegistry(), profile=True)
        assert obs.worker_flags() == {
            "events": False, "metrics": True, "trace": False,
            "profile": True, "diag_every": 0,
        }

    def test_diag_every_alone_enables_and_rides_worker_flags(self):
        obs = Instrumentation(diag_every=500)
        assert obs.enabled()
        assert obs.worker_flags()["diag_every"] == 500


# ---------------------------------------------------------------------------
# Chain instrumentation: bit-identity and recorded metrics


class TestChainInstrumentation:
    def _make_chain(self, seed=11, instrumented=False, obs=None):
        system = random_blob_system(24, seed=7)
        chain = SeparationChain(system, lam=4.0, gamma=4.0, seed=seed)
        if instrumented:
            chain.instrument(obs)
        return chain

    def test_instrumented_run_is_bit_identical(self):
        plain = self._make_chain()
        obs = Instrumentation(
            logger=JsonLogger.collecting(),
            metrics=MetricsRegistry(),
            trace=TraceRecorder(),
        )
        wired = self._make_chain(instrumented=True, obs=obs)
        plain.run(1500).run(500)
        wired.run(1500).run(500)
        assert dict(plain.system.colors) == dict(wired.system.colors)
        assert plain.accepted_moves == wired.accepted_moves
        assert plain.accepted_swaps == wired.accepted_swaps
        assert plain.iterations == wired.iterations
        # And the RNG streams remain in lockstep afterwards.
        assert plain.rng.random() == wired.rng.random()

    def test_metrics_recorded_per_run(self):
        metrics = MetricsRegistry()
        chain = self._make_chain(instrumented=True,
                                 obs=Instrumentation(metrics=metrics))
        chain.run(800)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["chain.steps"] == 800.0
        assert snapshot["counters"]["chain.moves_accepted"] == float(
            chain.accepted_moves
        )
        assert snapshot["counters"]["chain.swaps_accepted"] == float(
            chain.accepted_swaps
        )
        assert snapshot["histograms"]["chain.run_seconds"]["count"] == 1
        assert snapshot["gauges"]["chain.perimeter"] == float(
            chain.system.perimeter()
        )
        rate = snapshot["gauges"]["chain.acceptance_rate"]
        assert rate == pytest.approx(chain.acceptance_rate())

    def test_trace_and_log_events(self):
        logger = JsonLogger.collecting()
        trace = TraceRecorder()
        chain = self._make_chain(
            instrumented=True,
            obs=Instrumentation(logger=logger, trace=trace),
        )
        chain.run(300)
        assert [e["name"] for e in trace.events] == ["chain.run"]
        assert logger.records[0]["event"] == "chain.run"
        assert logger.records[0]["steps"] == 300

    def test_instrument_detaches_with_no_arguments(self):
        chain = self._make_chain(
            instrumented=True, obs=Instrumentation(metrics=MetricsRegistry())
        )
        assert chain._obs_active
        chain.instrument()
        assert not chain._obs_active

    def test_acceptance_rate_nan_before_any_step(self):
        chain = self._make_chain()
        assert math.isnan(chain.acceptance_rate())
        chain.run(100)
        assert 0.0 <= chain.acceptance_rate() <= 1.0


# ---------------------------------------------------------------------------
# Engine integration: worker streams merged into the parent


class TestEngineInstrumentation:
    def _tasks(self, count=2, steps=300):
        tasks = []
        for index in range(count):
            system = random_blob_system(16, seed=20 + index)
            tasks.append(
                CellTask(
                    lam=4.0,
                    gamma=4.0,
                    replica=index,
                    seed=5 + index,
                    steps=steps,
                    system_json=configuration_to_json(
                        system, sort_nodes=False
                    ),
                    label=f"cell-{index}",
                )
            )
        return tasks

    def _obs(self):
        return Instrumentation(
            logger=JsonLogger.collecting(),
            metrics=MetricsRegistry(),
            trace=TraceRecorder(process_name="repro"),
        )

    def test_serial_backend_merges_worker_streams(self):
        obs = self._obs()
        results = execute_cells(self._tasks(), backend="serial", obs=obs)
        assert all(result.wall_time > 0.0 for result in results)

        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["engine.cells_completed"] == 2.0
        assert snapshot["counters"]["engine.steps"] == 600.0
        assert snapshot["counters"]["chain.steps"] == 600.0
        assert snapshot["histograms"]["engine.cell_seconds"]["count"] == 2
        cells = snapshot["series"]["engine.cells"]
        assert len(cells) == 2
        for entry in cells:
            assert entry["wall_time"] > 0.0
            assert entry["steps_per_sec"] > 0.0
            assert not entry["from_checkpoint"]

        events = obs.logger.records
        names = [record["event"] for record in events]
        assert "engine.start" in names and "engine.done" in names
        cell_scoped = [r for r in events if "cell" in r and "lam" in r]
        assert cell_scoped, "worker events must carry cell context"
        validate_trace(obs.trace.to_json())
        assert any(
            event.get("name") == "cell" for event in obs.trace.events
        )

    def test_process_backend_stitches_worker_pids(self):
        obs = self._obs()
        execute_cells(
            self._tasks(), backend="process", workers=2, obs=obs
        )
        validate_trace(obs.trace.to_json())
        cell_events = [
            event for event in obs.trace.events if event.get("name") == "cell"
        ]
        assert len(cell_events) == 2
        # Worker events keep their own pid (distinct from the parent's
        # lane) so perfetto renders one lane per pool process.
        assert all(event["pid"] != 0 for event in cell_events)
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["engine.cells_completed"] == 2.0
        assert snapshot["counters"]["chain.steps"] == 600.0

    def test_instrumented_results_match_uninstrumented(self):
        plain = execute_cells(self._tasks(), backend="serial")
        wired = execute_cells(
            self._tasks(), backend="serial", obs=self._obs()
        )
        for p, w in zip(plain, wired):
            assert dict(p.system.colors) == dict(w.system.colors)
            assert p.iterations == w.iterations
            assert p.accepted_moves == w.accepted_moves

    def test_checkpoint_hits_and_misses_counted(self, tmp_path):
        tasks = self._tasks()
        first = self._obs()
        # resume=True with an empty directory: every lookup is a miss.
        execute_cells(tasks, checkpoint_dir=tmp_path, resume=True, obs=first)
        snapshot = first.metrics.snapshot()
        assert snapshot["counters"]["engine.checkpoint_misses"] == 2.0

        second = self._obs()
        execute_cells(
            tasks, checkpoint_dir=tmp_path, resume=True, obs=second
        )
        snapshot = second.metrics.snapshot()
        assert snapshot["counters"]["engine.checkpoint_hits"] == 2.0
        assert "engine.checkpoint_misses" not in snapshot["counters"] or (
            snapshot["counters"]["engine.checkpoint_misses"] == 0.0
        )
        cells = snapshot["series"]["engine.cells"]
        assert all(entry["from_checkpoint"] for entry in cells)

    def test_profile_returns_report(self):
        obs = Instrumentation(
            logger=JsonLogger.collecting(), profile=True
        )
        results = execute_cells(self._tasks(count=1), obs=obs)
        assert results[0].profile is not None
        assert "cumulative" in results[0].profile

    def test_checkpoint_files_stay_free_of_obs_payload(self, tmp_path):
        from repro.experiments.parallel import read_checkpoint_payload

        tasks = self._tasks(count=1)
        execute_cells(tasks, checkpoint_dir=tmp_path, obs=self._obs())
        (payload_file,) = tmp_path.glob("cell-*.bin")
        payload = read_checkpoint_payload(payload_file)
        for key in ("events", "trace_events", "metrics", "profile"):
            assert key not in payload


# ---------------------------------------------------------------------------
# Satellite: RunRecorder.series validates names even when empty


class TestRunRecorderSeries:
    def test_unknown_name_raises_even_with_no_rows(self):
        recorder = RunRecorder(observables={"alpha": lambda s: 1.0})
        with pytest.raises(KeyError):
            recorder.series("alhpa")  # typo must not return []

    def test_known_names_allowed_when_empty(self):
        recorder = RunRecorder(observables={"alpha": lambda s: 1.0})
        assert recorder.series("alpha") == []
        assert recorder.series("iteration") == []
