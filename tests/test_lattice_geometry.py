"""Tests for geometric constructions on the lattice."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lattice.connectivity import is_connected
from repro.lattice.geometry import (
    boundary_nodes,
    bounding_radius,
    disk,
    hexagon,
    hexagon_perimeter_length,
    hexagon_size,
    lattice_distance,
    line,
    parallelogram,
    ring,
)
from repro.lattice.holes import has_holes
from repro.lattice.triangular import are_adjacent, neighbors


class TestDistance:
    def test_distance_to_self(self):
        assert lattice_distance((3, -1), (3, -1)) == 0

    def test_distance_to_neighbors_is_one(self):
        for nbr in neighbors((0, 0)):
            assert lattice_distance((0, 0), nbr) == 1

    @given(
        st.tuples(st.integers(-20, 20), st.integers(-20, 20)),
        st.tuples(st.integers(-20, 20), st.integers(-20, 20)),
    )
    def test_distance_symmetric(self, u, v):
        assert lattice_distance(u, v) == lattice_distance(v, u)

    @given(
        st.tuples(st.integers(-10, 10), st.integers(-10, 10)),
        st.tuples(st.integers(-10, 10), st.integers(-10, 10)),
        st.tuples(st.integers(-10, 10), st.integers(-10, 10)),
    )
    def test_triangle_inequality(self, u, v, w):
        assert lattice_distance(u, w) <= (
            lattice_distance(u, v) + lattice_distance(v, w)
        )


class TestRing:
    def test_radius_zero_is_center(self):
        assert ring((2, 3), 0) == [(2, 3)]

    @given(st.integers(min_value=1, max_value=8))
    def test_ring_size_is_6r(self, r):
        assert len(ring((0, 0), r)) == 6 * r

    @given(st.integers(min_value=1, max_value=8))
    def test_ring_nodes_at_exact_distance(self, r):
        for node in ring((0, 0), r):
            assert lattice_distance((0, 0), node) == r

    @given(st.integers(min_value=1, max_value=6))
    def test_ring_consecutive_nodes_adjacent(self, r):
        nodes = ring((0, 0), r)
        for i, node in enumerate(nodes):
            assert are_adjacent(node, nodes[(i + 1) % len(nodes)])

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            ring((0, 0), -1)


class TestDisk:
    @given(st.integers(min_value=0, max_value=6))
    def test_disk_size_matches_hexagon_size(self, r):
        assert len(disk((0, 0), r)) == hexagon_size(r)

    def test_disk_connected_hole_free(self):
        nodes = set(disk((0, 0), 3))
        assert is_connected(nodes)
        assert not has_holes(nodes)


class TestHexagon:
    @given(st.integers(min_value=1, max_value=200))
    def test_hexagon_has_n_nodes(self, n):
        assert len(hexagon(n)) == n

    @given(st.integers(min_value=1, max_value=120))
    def test_hexagon_connected_and_hole_free(self, n):
        nodes = set(hexagon(n))
        assert is_connected(nodes)
        assert not has_holes(nodes)

    def test_hexagon_size_formula(self):
        assert [hexagon_size(s) for s in range(4)] == [1, 7, 19, 37]

    def test_hexagon_perimeter_length(self):
        assert hexagon_perimeter_length(0) == 0
        assert hexagon_perimeter_length(3) == 18

    def test_hexagon_invalid_n(self):
        with pytest.raises(ValueError):
            hexagon(0)


class TestLine:
    @given(st.integers(min_value=1, max_value=50))
    def test_line_is_connected_path(self, n):
        nodes = line(n)
        assert len(nodes) == n
        for a, b in zip(nodes, nodes[1:]):
            assert are_adjacent(a, b)

    def test_line_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            line(3, direction=(2, 0))


class TestParallelogram:
    def test_size(self):
        assert len(parallelogram(3, 4)) == 12

    def test_connected(self):
        assert is_connected(set(parallelogram(4, 4)))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            parallelogram(0, 3)


class TestBoundaryNodes:
    def test_interior_excluded(self):
        nodes = set(disk((0, 0), 2))
        border = boundary_nodes(nodes)
        assert (0, 0) not in border
        assert all(lattice_distance((0, 0), node) == 2 for node in border)

    def test_bounding_radius(self):
        assert bounding_radius(set(disk((0, 0), 3))) == 3
        assert bounding_radius(set()) == 0
