"""Tests for the process-pool execution backend (checkpoint/resume)."""

import json
import random
import warnings

import pytest

from repro.analysis.compression_metric import alpha_of
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.parallel import (
    CellResult,
    CellTask,
    checkpoint_path,
    execute_cells,
    group_by_cell,
    resolve_backend,
    run_cell,
    task_payload,
)
from repro.experiments.scaling import scaling_study
from repro.experiments.sweep import _replica_seed, grid, run_sweep
from repro.system.initializers import random_blob_system
from repro.util.rng import seed_entropy
from repro.util.serialization import configuration_to_json


def make_task(n=16, seed=3, steps=400, checkpoints=(), **overrides):
    system = random_blob_system(n, seed=seed)
    fields = dict(
        lam=4.0,
        gamma=4.0,
        replica=0,
        seed=seed,
        steps=steps,
        system_json=configuration_to_json(system, sort_nodes=False),
        checkpoints=tuple(checkpoints),
    )
    fields.update(overrides)
    return CellTask(**fields)


METRICS = {
    "alpha": alpha_of,
    "hetero": lambda s: float(s.hetero_total),
}


class TestCellTask:
    def test_key_is_stable_and_label_free(self):
        task = make_task()
        assert task.key() == make_task().key()
        assert task.key() == make_task(label="renamed").key()

    def test_key_covers_trajectory_fields(self):
        base = make_task()
        assert base.key() != make_task(lam=2.0).key()
        assert base.key() != make_task(gamma=2.0).key()
        assert base.key() != make_task(seed=99).key()
        assert base.key() != make_task(steps=401).key()
        assert base.key() != make_task(swaps=False).key()
        assert base.key() != make_task(checkpoints=(100,)).key()
        assert base.key() != make_task(n=17).key()  # different initial config

    def test_validate_rejects_bad_tasks(self):
        with pytest.raises(ValueError):
            make_task(system_json="").validate()
        with pytest.raises(ValueError):
            make_task(steps=-1).validate()
        with pytest.raises(ValueError):
            make_task(checkpoints=(100, 100)).validate()
        with pytest.raises(ValueError):
            make_task(checkpoints=(200, 100)).validate()
        with pytest.raises(ValueError):
            make_task(steps=50, checkpoints=(100,)).validate()
        make_task(checkpoints=(100, 400)).validate()  # well-formed


class TestRunCell:
    def test_worker_matches_in_process_chain(self):
        from repro.core.separation_chain import SeparationChain

        system = random_blob_system(20, seed=5)
        reference = system.copy()
        chain = SeparationChain(reference, lam=3.0, gamma=2.0, seed=11)
        chain.run(600)

        task = CellTask(
            lam=3.0,
            gamma=2.0,
            replica=0,
            seed=11,
            steps=600,
            system_json=configuration_to_json(system, sort_nodes=False),
        )
        payload = run_cell(task_payload(task))
        assert payload["iterations"] == 600
        assert payload["accepted_moves"] == chain.accepted_moves
        result_colors = json.loads(payload["final"])["nodes"]
        assert len(result_colors) == 20

    def test_snapshots_taken_at_checkpoints(self):
        task = make_task(steps=300, checkpoints=(100, 200, 300))
        payload = run_cell(task_payload(task))
        assert len(payload["snapshots"]) == 3
        assert payload["iterations"] == 300


class TestExecuteCells:
    def test_serial_and_process_backends_identical(self):
        tasks = [
            make_task(seed=seed, steps=500, lam=lam, checkpoints=(250, 500))
            for seed in (1, 2)
            for lam in (1.0, 4.0)
        ]
        serial = execute_cells(tasks, backend="serial")
        process = execute_cells(tasks, backend="process", workers=2)
        assert len(serial) == len(process) == 4
        for a, b in zip(serial, process):
            assert a.system.colors == b.system.colors
            assert a.iterations == b.iterations
            assert a.accepted_moves == b.accepted_moves
            assert a.accepted_swaps == b.accepted_swaps
            assert [s.colors for s in a.snapshots] == [
                s.colors for s in b.snapshots
            ]

    def test_results_follow_task_order(self):
        tasks = [make_task(seed=s, steps=100) for s in (9, 8, 7)]
        results = execute_cells(tasks, backend="process", workers=2)
        assert [r.task.seed for r in results] == [9, 8, 7]

    def test_validation_and_argument_errors(self):
        task = make_task()
        with pytest.raises(ValueError):
            execute_cells([task], backend="threads")
        with pytest.raises(ValueError):
            execute_cells([task], backend="process", workers=0)
        with pytest.raises(ValueError):
            execute_cells([task], resume=True)  # no checkpoint_dir
        with pytest.raises(ValueError):
            execute_cells([make_task(steps=-2)])

    def test_progress_callback_sees_every_cell(self):
        tasks = [make_task(seed=s, steps=50) for s in (1, 2, 3)]
        seen = []
        execute_cells(
            tasks,
            progress=lambda done, total, result: seen.append((done, total)),
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]


class TestCheckpointResume:
    def test_checkpoints_written_and_resumed(self, tmp_path):
        tasks = [make_task(seed=s, steps=200) for s in (1, 2, 3)]
        first = execute_cells(tasks, checkpoint_dir=tmp_path)
        assert len(list(tmp_path.glob("cell-*.bin"))) == 3

        restored_flags = []
        second = execute_cells(
            tasks,
            checkpoint_dir=tmp_path,
            resume=True,
            progress=lambda done, total, r: restored_flags.append(
                r.from_checkpoint
            ),
        )
        assert restored_flags == [True, True, True]
        for a, b in zip(first, second):
            assert a.system.colors == b.system.colors
            assert a.iterations == b.iterations

    def test_resume_recomputes_only_missing_cells(self, tmp_path):
        tasks = [make_task(seed=s, steps=200) for s in (1, 2, 3)]
        execute_cells(tasks, checkpoint_dir=tmp_path)
        checkpoint_path(tmp_path, tasks[1]).unlink()

        flags = {}
        results = execute_cells(
            tasks,
            checkpoint_dir=tmp_path,
            resume=True,
            progress=lambda done, total, r: flags.setdefault(
                r.task.seed, r.from_checkpoint
            ),
        )
        assert flags == {1: True, 2: False, 3: True}
        assert len(list(tmp_path.glob("cell-*.bin"))) == 3
        assert all(isinstance(r, CellResult) for r in results)

    def test_corrupt_checkpoint_recomputes_with_warning(self, tmp_path):
        task = make_task(steps=150)
        (first,) = execute_cells([task], checkpoint_dir=tmp_path)
        checkpoint_path(tmp_path, task).write_text("{ not json")
        with pytest.warns(RuntimeWarning, match="unusable checkpoint"):
            (second,) = execute_cells(
                [task], checkpoint_dir=tmp_path, resume=True
            )
        assert not second.from_checkpoint
        assert second.system.colors == first.system.colors

    def test_stale_checkpoint_from_other_sweep_ignored(self, tmp_path):
        task = make_task(steps=150)
        other = make_task(steps=150, seed=99)
        execute_cells([other], checkpoint_dir=tmp_path)
        # Forge a filename collision with mismatched content.
        checkpoint_path(tmp_path, task).write_bytes(
            checkpoint_path(tmp_path, other).read_bytes()
        )
        with pytest.warns(RuntimeWarning, match="unusable checkpoint"):
            (result,) = execute_cells(
                [task], checkpoint_dir=tmp_path, resume=True
            )
        assert not result.from_checkpoint


class TestResolveBackend:
    def test_explicit_backend_wins(self):
        assert resolve_backend("serial", workers=8) == "serial"
        assert resolve_backend("process", workers=None) == "process"

    def test_workers_imply_process(self):
        assert resolve_backend(None, workers=2) == "process"
        assert resolve_backend(None, workers=1) == "serial"
        assert resolve_backend(None, workers=None) == "serial"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("threads", workers=None)


class TestGroupByCell:
    def test_groups_replica_innermost(self):
        results = list(range(6))  # stand-ins; grouping is positional
        assert group_by_cell(results, 2) == [[0, 1], [2, 3], [4, 5]]
        assert group_by_cell(results, 1) == [[0], [1], [2], [3], [4], [5]]

    def test_validates(self):
        with pytest.raises(ValueError):
            group_by_cell([1, 2, 3], 2)
        with pytest.raises(ValueError):
            group_by_cell([], 0)


class TestSweepBackends:
    def test_serial_vs_process_sweep_metrics_identical(self):
        kwargs = dict(
            param_grid=grid([1.0, 4.0], [1.0, 4.0]),
            metrics=METRICS,
            n=24,
            iterations=2_000,
            seed=7,
            replicas=2,
        )
        serial = run_sweep(backend="serial", **kwargs)
        parallel = run_sweep(backend="process", workers=2, **kwargs)
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert a.params == b.params
            assert a.metrics == b.metrics
            assert a.replica_values == b.replica_values
            assert a.system.colors == b.system.colors

    def test_std_metrics_recorded(self):
        points = run_sweep(
            grid([4.0], [4.0]),
            metrics=METRICS,
            n=24,
            iterations=1_000,
            seed=1,
            replicas=3,
        )
        (point,) = points
        assert point.metrics["_replicas"] == 3.0
        for name in METRICS:
            assert name + "_std" in point.metrics
            samples = point.replica_values[name]
            assert len(samples) == 3
            assert point.metrics[name] == pytest.approx(
                sum(samples) / 3
            )

    def test_sweep_checkpoint_resume(self, tmp_path):
        kwargs = dict(
            param_grid=grid([1.0, 4.0], [4.0]),
            metrics=METRICS,
            n=20,
            iterations=1_000,
            seed=5,
        )
        first = run_sweep(checkpoint_dir=tmp_path, **kwargs)
        flags = []
        second = run_sweep(
            checkpoint_dir=tmp_path,
            resume=True,
            progress=lambda done, total, r: flags.append(r.from_checkpoint),
            **kwargs,
        )
        assert flags == [True, True]
        for a, b in zip(first, second):
            assert a.metrics == b.metrics


class TestSeedDerivation:
    def test_rng_seeds_no_longer_collapse(self):
        """The historical bug mapped every non-int seed to base 0, so
        sweeps seeded with distinct Random instances were identical."""
        kwargs = dict(
            param_grid=grid([4.0], [4.0]),
            metrics=METRICS,
            n=24,
            iterations=2_000,
        )
        a = run_sweep(seed=random.Random(1), **kwargs)
        b = run_sweep(seed=random.Random(2), **kwargs)
        assert a[0].system.colors != b[0].system.colors

    def test_string_seed_raises_instead_of_degrading(self):
        with pytest.raises(TypeError):
            run_sweep(
                grid([4.0], [4.0]),
                metrics=METRICS,
                n=16,
                iterations=100,
                seed="not-a-seed",
            )

    def test_replica_seed_distinct_per_cell_and_replica(self):
        base = seed_entropy(0)
        seeds = {
            _replica_seed(base, {"lam": lam, "gamma": gamma}, replica)
            for lam in (1.0, 4.0)
            for gamma in (1.0, 4.0)
            for replica in (0, 1, 2)
        }
        assert len(seeds) == 12


class TestHarnessBackends:
    def test_figure3_backends_identical(self):
        kwargs = dict(
            n=24,
            lambdas=(1.0, 4.0),
            gammas=(1.0, 4.0),
            iterations=2_000,
            seed=2018,
        )
        serial = run_figure3(**kwargs)
        parallel = run_figure3(backend="process", workers=2, **kwargs)
        assert serial.phases == parallel.phases
        assert serial.metrics == parallel.metrics

    def test_figure2_replicas_record_spread(self):
        result = run_figure2(
            n=24,
            scale=0.001,
            seed=3,
            replicas=2,
            checkpoints=[500, 1_000],
        )
        assert result.replicas == 2
        assert result.rows_std is not None
        assert len(result.rows_std) == len(result.rows)
        for row in result.rows_std:
            assert all(value >= 0.0 for value in row.values())

    def test_scaling_study_backends_identical(self):
        kwargs = dict(
            sizes=(16, 25),
            steps_per_particle=100,
            replicas=2,
            seed=4,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            serial = scaling_study(**kwargs)
            parallel = scaling_study(backend="process", workers=2, **kwargs)
        assert serial == parallel


class TestKernelKnob:
    """The kernel backend is an engineering choice, not a trajectory one.

    Because trajectories are bit-identical across kernels, the kernel is
    deliberately excluded from ``CellTask.key()``: checkpoints written by
    a dict-kernel sweep resume under the grid kernel (and vice versa)
    without recomputation.
    """

    def test_key_is_kernel_agnostic(self):
        base = make_task()
        assert base.key() == make_task(kernel="grid").key()
        assert base.key() == make_task(kernel="dict").key()

    def test_validate_rejects_unknown_kernel(self):
        with pytest.raises(ValueError):
            make_task(kernel="numpy").validate()

    def test_worker_results_identical_across_kernels(self):
        payloads = [
            run_cell(task_payload(make_task(steps=3_000, kernel=kernel)))
            for kernel in ("dict", "grid")
        ]
        d, g = payloads
        assert d["final"] == g["final"]
        assert d["accepted_moves"] == g["accepted_moves"]
        assert d["accepted_swaps"] == g["accepted_swaps"]
        assert d["snapshots"] == g["snapshots"]

    def test_dict_checkpoints_resume_under_grid(self, tmp_path):
        dict_tasks = [
            make_task(seed=s, steps=600, kernel="dict") for s in (1, 2)
        ]
        first = execute_cells(dict_tasks, checkpoint_dir=tmp_path)

        grid_tasks = [
            make_task(seed=s, steps=600, kernel="grid") for s in (1, 2)
        ]
        flags = []
        second = execute_cells(
            grid_tasks,
            checkpoint_dir=tmp_path,
            resume=True,
            progress=lambda done, total, r: flags.append(r.from_checkpoint),
        )
        assert flags == [True, True]
        for a, b in zip(first, second):
            assert a.system.colors == b.system.colors
            assert a.iterations == b.iterations

    def test_sweep_metrics_identical_across_kernels(self):
        kwargs = dict(
            param_grid=grid([2.0, 4.0], [4.0]),
            metrics=METRICS,
            n=20,
            iterations=2_000,
            seed=7,
        )
        dict_points = run_sweep(kernel="dict", **kwargs)
        grid_points = run_sweep(kernel="grid", **kwargs)
        for d, g in zip(dict_points, grid_points):
            assert d.params == g.params
            assert d.metrics == g.metrics
            assert d.system.colors == g.system.colors
