"""Tests for system observables."""

import math

import pytest

from repro.system.configuration import ParticleSystem
from repro.system.initializers import checkerboard_system, separated_system
from repro.system.observables import (
    color_counts,
    edge_count,
    heterogeneous_edge_count,
    homogeneous_edge_count,
    largest_cluster_fraction,
    log_weight,
    log_weight_edge_form,
    mean_same_color_neighbor_fraction,
    monochromatic_cluster_sizes,
)
from repro.system.particle import Particle, color_name


class TestEdgeObservables:
    def test_counts_sum(self):
        system = ParticleSystem.from_nodes(
            [(0, 0), (1, 0), (0, 1), (1, 1)], [0, 1, 0, 1]
        )
        assert edge_count(system) == (
            heterogeneous_edge_count(system) + homogeneous_edge_count(system)
        )

    def test_color_counts(self):
        system = ParticleSystem.from_nodes([(0, 0), (1, 0), (2, 0)], [0, 0, 1])
        assert color_counts(system) == [2, 1]


class TestLogWeight:
    def test_weight_forms_differ_by_constant(self):
        """λ^e γ^a and (λγ)^{-p} γ^{-h} differ by (λγ)^{3n-3} (Lemma 9)."""
        lam, gamma = 3.0, 2.0
        for seed in range(5):
            from repro.system.initializers import random_blob_system

            system = random_blob_system(12, seed=seed)
            constant = (3 * system.n - 3) * math.log(lam * gamma)
            assert math.isclose(
                log_weight_edge_form(system, lam, gamma)
                - log_weight(system, lam, gamma),
                constant,
                rel_tol=1e-12,
            )

    def test_invalid_parameters(self):
        system = ParticleSystem.from_nodes([(0, 0)], [0])
        with pytest.raises(ValueError):
            log_weight(system, -1.0, 2.0)
        with pytest.raises(ValueError):
            log_weight_edge_form(system, 1.0, 0.0)


class TestClusters:
    def test_separated_has_giant_clusters(self):
        system = separated_system(36)
        sizes = monochromatic_cluster_sizes(system)
        assert sizes[0][0] == 18
        assert sizes[1][0] == 18
        assert largest_cluster_fraction(system) == 0.5

    def test_checkerboard_has_smaller_clusters(self):
        mixed = checkerboard_system(36)
        assert largest_cluster_fraction(mixed) < 0.5

    def test_same_color_fraction_bounds(self):
        for system in (separated_system(25), checkerboard_system(25)):
            fraction = mean_same_color_neighbor_fraction(system)
            assert 0.0 <= fraction <= 1.0

    def test_separated_more_homophilous_than_checkerboard(self):
        assert mean_same_color_neighbor_fraction(
            separated_system(49)
        ) > mean_same_color_neighbor_fraction(checkerboard_system(49))


class TestParticle:
    def test_expand_contract_cycle(self):
        p = Particle(pid=0, color=1, head=(0, 0))
        assert p.is_contracted
        p.expand((1, 0))
        assert p.is_expanded
        assert set(p.occupied_nodes()) == {(0, 0), (1, 0)}
        p.contract_to_head()
        assert p.head == (1, 0) and p.is_contracted

    def test_contract_to_tail_aborts(self):
        p = Particle(pid=0, color=0, head=(0, 0))
        p.expand((1, 0))
        p.contract_to_tail()
        assert p.head == (0, 0)

    def test_double_expand_raises(self):
        p = Particle(pid=0, color=0, head=(0, 0))
        p.expand((1, 0))
        with pytest.raises(RuntimeError):
            p.expand((2, 0))

    def test_contract_when_contracted_raises(self):
        p = Particle(pid=0, color=0, head=(0, 0))
        with pytest.raises(RuntimeError):
            p.contract_to_head()

    def test_color_names(self):
        assert color_name(0) == "blue"
        assert color_name(1) == "red"
        assert color_name(99) == "color-99"
        with pytest.raises(ValueError):
            color_name(-1)
