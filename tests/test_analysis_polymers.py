"""Tests for polymer enumeration."""

from repro.analysis.polymers import (
    all_polymers_in_region,
    enumerate_connected_edge_sets_through_edge,
    enumerate_even_polymers_through_edge,
    enumerate_loops_through_edge,
    even_closure_size,
    is_even_subgraph,
    loop_closure_size,
    loop_counts_by_length,
    loops_share_edge,
    polymer_vertices,
    polymers_share_vertex,
    triangle_edges,
    REFERENCE_EDGE,
)
from repro.lattice.geometry import disk
from repro.lattice.triangular import edge_key


class TestLoops:
    def test_two_triangles_through_edge(self):
        loops = enumerate_loops_through_edge(3)
        assert len(loops) == 2
        assert all(len(loop) == 3 for loop in loops)

    def test_loop_counts_by_length(self):
        counts = loop_counts_by_length(6)
        assert counts[3] == 2
        assert counts[4] == 4
        assert counts[5] == 10
        assert counts[6] == 30

    def test_loops_contain_reference_edge(self):
        for loop in enumerate_loops_through_edge(6):
            assert REFERENCE_EDGE in loop

    def test_loops_are_even_subgraphs(self):
        """Every cycle is an even subgraph (degree 2 everywhere)."""
        for loop in enumerate_loops_through_edge(6):
            assert is_even_subgraph(loop)

    def test_loops_unique(self):
        loops = enumerate_loops_through_edge(7)
        assert len(loops) == len(set(loops))

    def test_max_length_below_three_empty(self):
        assert enumerate_loops_through_edge(2) == []


class TestEvenPolymers:
    def test_smallest_are_triangles(self):
        evens = enumerate_even_polymers_through_edge(3)
        assert len(evens) == 2

    def test_at_six_edges_includes_bowties(self):
        """Two triangles sharing a vertex: 6 edges, degree 4 at the
        shared vertex — connected, even, not a single cycle."""
        evens = enumerate_even_polymers_through_edge(6)
        six_edge = [p for p in evens if len(p) == 6]
        bowties = [
            p
            for p in six_edge
            if any(
                sum(1 for e in p if v in e) == 4
                for v in polymer_vertices(p)
            )
        ]
        assert bowties, "expected bowtie even polymers at size 6"

    def test_all_even(self):
        for polymer in enumerate_even_polymers_through_edge(6):
            assert is_even_subgraph(polymer)

    def test_connected_edge_sets_grow(self):
        small = enumerate_connected_edge_sets_through_edge(2)
        # 1 singleton + one set per edge adjacent to the reference edge.
        assert len(small) == 1 + 10


class TestCompatibility:
    def test_loops_share_edge(self):
        a, b = enumerate_loops_through_edge(3)
        assert loops_share_edge(a, b)  # both contain the reference edge

    def test_disjoint_loops_compatible(self):
        a = frozenset(
            [edge_key((0, 0), (1, 0)), edge_key((1, 0), (0, 1)), edge_key((0, 0), (0, 1))]
        )
        far = frozenset(
            [
                edge_key((10, 0), (11, 0)),
                edge_key((11, 0), (10, 1)),
                edge_key((10, 0), (10, 1)),
            ]
        )
        assert not loops_share_edge(a, far)
        assert not polymers_share_vertex(a, far)

    def test_closure_sizes(self):
        triangle = enumerate_loops_through_edge(3)[0]
        assert loop_closure_size(triangle) == 3
        # Even closure: all edges incident to the triangle's 3 vertices.
        assert even_closure_size(triangle) > 3


class TestRegionEnumeration:
    def test_region_loops_all_inside(self):
        region = triangle_edges(set(disk((0, 0), 2)))
        loops = all_polymers_in_region(region, 5, kind="loop")
        assert loops
        for loop in loops:
            assert loop <= region

    def test_region_loops_unique(self):
        region = triangle_edges(set(disk((0, 0), 2)))
        loops = all_polymers_in_region(region, 5, kind="loop")
        assert len(loops) == len(set(loops))

    def test_region_triangle_count(self):
        """A radius-1 disk (7 nodes) contains exactly its 6 unit
        triangles as length-3 loops."""
        region = triangle_edges(set(disk((0, 0), 1)))
        loops = all_polymers_in_region(region, 3, kind="loop")
        assert len(loops) == 6

    def test_region_even_polymers(self):
        region = triangle_edges(set(disk((0, 0), 1)))
        evens = all_polymers_in_region(region, 4, kind="even")
        # Only the six triangles: no 4-edge even subgraph fits in a
        # radius-1 disk... rhombi do fit. Verify all are even and inside.
        for polymer in evens:
            assert is_even_subgraph(polymer)
            assert polymer <= region

    def test_unknown_kind_raises(self):
        import pytest

        with pytest.raises(ValueError):
            all_polymers_in_region(set(), 3, kind="mystery")

    def test_non_horizontal_loops_found(self):
        """Loops with no horizontal edge must be enumerated too (the
        NE/NW rhombus), guarding against orientation bias."""
        region = triangle_edges(set(disk((0, 0), 2)))
        loops = all_polymers_in_region(region, 4, kind="loop")
        horizontal_free = [
            loop
            for loop in loops
            if all(a[1] != b[1] for a, b in loop)
        ]
        assert horizontal_free, "expected rhombi without horizontal edges"
