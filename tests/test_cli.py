"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import read_jsonl, validate_trace
from repro.system.initializers import hexagon_system
from repro.util.serialization import load_payload, save_configuration


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.n == 100
        assert args.lam == 4.0
        assert args.init == "blob"


class TestSimulate:
    def test_basic_run(self, capsys):
        code = main(
            [
                "simulate", "-n", "30", "--steps", "5000", "--seed", "1",
                "--checkpoints", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "perimeter" in out
        assert "5,000" in out

    def test_ascii_and_save(self, tmp_path, capsys):
        target = tmp_path / "final.json"
        code = main(
            [
                "simulate", "-n", "20", "--steps", "2000", "--seed", "2",
                "--ascii", "--save", str(target), "--init", "hexagon",
            ]
        )
        assert code == 0
        assert target.exists()
        out = capsys.readouterr().out
        assert "o" in out and "x" in out

    def test_no_swaps_flag(self, capsys):
        code = main(
            ["simulate", "-n", "15", "--steps", "1000", "--no-swaps",
             "--seed", "3"]
        )
        assert code == 0
        # Diagnostics (run header) go to stderr; tables stay on stdout.
        assert "swaps=False" in capsys.readouterr().err

    def test_quiet_silences_stderr_only(self, capsys):
        code = main(
            ["simulate", "-n", "15", "--steps", "1000", "--seed", "3",
             "--quiet"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        assert "perimeter" in captured.out  # result table survives

    def test_zero_steps_rejected_at_parse_time(self, capsys):
        # --steps is validated by the positive_int argparse type now, so
        # a zero/negative budget is a usage error (exit code 2), not a
        # silent no-op run.
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", "-n", "15", "--steps", "0", "--seed", "3"])
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err


class TestArgumentValidation:
    """positive_int / nonnegative_int argparse types reject bad values."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["simulate", "--steps", "-5"],
            ["simulate", "--steps", "1.5"],
            ["figure2", "--measure-every", "0"],
            ["figure2", "--measure-every", "-1"],
            ["figure2", "--measure-every", "10", "--steps", "0"],
            ["sweep", "--replicas", "0"],
            ["sweep", "--replicas", "-3"],
            ["figure3", "--replicas", "zebra"],
            ["sweep", "--replicas-per-task", "-2"],
        ],
    )
    def test_nonpositive_values_exit_with_usage_error(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "integer" in err or "invalid" in err

    def test_valid_values_parse(self):
        args = build_parser().parse_args(
            ["sweep", "--replicas", "4", "--replicas-per-task", "0"]
        )
        assert args.replicas == 4
        assert args.replicas_per_task == 0

    def test_kernel_choices_include_batch(self):
        args = build_parser().parse_args(["sweep", "--kernel", "batch"])
        assert args.kernel == "batch"
        args = build_parser().parse_args(["simulate", "--kernel", "batch"])
        assert args.kernel == "batch"


class TestFigures:
    def test_figure2(self, capsys):
        code = main(
            ["figure2", "-n", "30", "--scale", "0.0005", "--seed", "4"]
        )
        assert code == 0
        assert "iteration" in capsys.readouterr().out

    def test_figure3_small(self, capsys):
        # Tiny grid via the iterations knob; the default grid is larger
        # but a smoke test must stay fast, so just assert it parses and
        # runs with minimal work.
        code = main(["figure3", "-n", "20", "--iterations", "2000"])
        assert code == 0
        assert "lambda\\gamma" in capsys.readouterr().out


class TestBatchKernelCli:
    def test_figure2_measure_mode_prints_trace(self, capsys):
        code = main(
            [
                "figure2", "-n", "24", "--measure-every", "250",
                "--steps", "1000", "--seed", "4", "--kernel", "batch",
                "--replicas", "2", "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "iteration" in out
        # 1000 steps / 250 per row + the t=0 row = 5 printed rows.
        assert out.count("\n") == 6  # header + 5 rows

    def test_sweep_batch_kernel_with_grouping(self, capsys):
        code = main(
            [
                "sweep", "--lambdas", "4", "--gammas", "4",
                "--iterations", "2000", "-n", "20", "--replicas", "3",
                "--kernel", "batch", "--replicas-per-task", "2",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "alpha" in out
        assert out.count("\n") >= 2  # header + one row


class TestStationary:
    def test_reports_gap(self, capsys):
        code = main(
            ["stationary", "-n", "4", "--counts", "2", "2", "--lam", "2",
             "--gamma", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "spectral gap" in out
        assert "detailed balance" in out


class TestSweep:
    def test_sweep_rows(self, capsys):
        code = main(
            [
                "sweep", "--lambdas", "4", "--gammas", "1", "4",
                "--iterations", "3000", "-n", "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 3  # header + two rows


class TestIllustrations:
    def test_writes_four_svgs(self, tmp_path, capsys):
        code = main(["illustrations", str(tmp_path / "figs")])
        assert code == 0
        # "wrote ..." confirmations are diagnostics: stderr, not stdout.
        assert capsys.readouterr().err.count("wrote") == 4
        assert len(list((tmp_path / "figs").glob("*.svg"))) == 4


class TestObservabilityFlags:
    def test_sweep_writes_log_metrics_trace(self, tmp_path, capsys):
        log_path = tmp_path / "run.jsonl"
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "sweep", "--lambdas", "2", "4", "--gammas", "1",
                "--iterations", "2000", "-n", "16", "--workers", "2",
                "--log-json", str(log_path),
                "--metrics-out", str(metrics_path),
                "--trace-out", str(trace_path),
            ]
        )
        assert code == 0

        # JSONL: every line parses; cell events carry bound context.
        records = read_jsonl(log_path)
        events = [record["event"] for record in records]
        assert "cli.start" in events
        assert "sweep.start" in events and "sweep.done" in events
        cell_records = [r for r in records if r["event"] == "cell.done"]
        assert len(cell_records) == 2
        for record in cell_records:
            assert record["run"] == "sweep"
            assert "cell" in record and "lam" in record

        # Metrics: versioned snapshot with per-cell wall-time/throughput.
        payload = load_payload(metrics_path)
        assert payload["counters"]["engine.cells_completed"] == 2.0
        for entry in payload["series"]["engine.cells"]:
            assert entry["wall_time"] > 0.0
            assert entry["steps_per_sec"] > 0.0

        # Trace: loads and validates as Chrome trace-event JSON.
        document = json.loads(trace_path.read_text())
        validate_trace(document)
        names = {event.get("name") for event in document["traceEvents"]}
        assert {"sweep", "execute_cells", "cell"} <= names

        # Result table still clean on stdout; progress on stderr.
        captured = capsys.readouterr()
        assert "lambda" in captured.out or "lam" in captured.out
        assert "[repro]" in captured.err

    def test_simulate_profile_flag(self, tmp_path, capsys):
        log_path = tmp_path / "run.jsonl"
        code = main(
            [
                "simulate", "-n", "15", "--steps", "500", "--seed", "3",
                "--profile", "--log-json", str(log_path),
            ]
        )
        assert code == 0
        assert "cumulative" in capsys.readouterr().err
        events = [record["event"] for record in read_jsonl(log_path)]
        assert "simulate.profile" in events


class TestRender:
    def test_render_roundtrip(self, tmp_path, capsys):
        source = tmp_path / "config.json"
        save_configuration(hexagon_system(12, seed=5), source)
        svg = tmp_path / "config.svg"
        code = main(["render", str(source), "--svg", str(svg)])
        assert code == 0
        assert svg.exists()
        assert "<svg" in svg.read_text()
