"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.system.initializers import hexagon_system
from repro.util.serialization import save_configuration


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.n == 100
        assert args.lam == 4.0
        assert args.init == "blob"


class TestSimulate:
    def test_basic_run(self, capsys):
        code = main(
            [
                "simulate", "-n", "30", "--steps", "5000", "--seed", "1",
                "--checkpoints", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "perimeter" in out
        assert "5,000" in out

    def test_ascii_and_save(self, tmp_path, capsys):
        target = tmp_path / "final.json"
        code = main(
            [
                "simulate", "-n", "20", "--steps", "2000", "--seed", "2",
                "--ascii", "--save", str(target), "--init", "hexagon",
            ]
        )
        assert code == 0
        assert target.exists()
        out = capsys.readouterr().out
        assert "o" in out and "x" in out

    def test_no_swaps_flag(self, capsys):
        code = main(
            ["simulate", "-n", "15", "--steps", "1000", "--no-swaps",
             "--seed", "3"]
        )
        assert code == 0
        assert "swaps=False" in capsys.readouterr().out


class TestFigures:
    def test_figure2(self, capsys):
        code = main(
            ["figure2", "-n", "30", "--scale", "0.0005", "--seed", "4"]
        )
        assert code == 0
        assert "iteration" in capsys.readouterr().out

    def test_figure3_small(self, capsys):
        # Tiny grid via the iterations knob; the default grid is larger
        # but a smoke test must stay fast, so just assert it parses and
        # runs with minimal work.
        code = main(["figure3", "-n", "20", "--iterations", "2000"])
        assert code == 0
        assert "lambda\\gamma" in capsys.readouterr().out


class TestStationary:
    def test_reports_gap(self, capsys):
        code = main(
            ["stationary", "-n", "4", "--counts", "2", "2", "--lam", "2",
             "--gamma", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "spectral gap" in out
        assert "detailed balance" in out


class TestSweep:
    def test_sweep_rows(self, capsys):
        code = main(
            [
                "sweep", "--lambdas", "4", "--gammas", "1", "4",
                "--iterations", "3000", "-n", "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 3  # header + two rows


class TestIllustrations:
    def test_writes_four_svgs(self, tmp_path, capsys):
        code = main(["illustrations", str(tmp_path / "figs")])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("wrote") == 4
        assert len(list((tmp_path / "figs").glob("*.svg"))) == 4


class TestRender:
    def test_render_roundtrip(self, tmp_path, capsys):
        source = tmp_path / "config.json"
        save_configuration(hexagon_system(12, seed=5), source)
        svg = tmp_path / "config.svg"
        code = main(["render", str(source), "--svg", str(svg)])
        assert code == 0
        assert svg.exists()
        assert "<svg" in svg.read_text()
