"""Cross-module integration tests.

These exercise full pipelines: simulate → measure → certify → compare
against exact/theoretical references, mirroring how the benchmarks drive
the library.
"""

import pytest

from repro import (
    CompressionChain,
    SeparationChain,
    hexagon_system,
    random_blob_system,
)
from repro.analysis.bounds import predicted_regime
from repro.analysis.compression_metric import alpha_of
from repro.analysis.estimators import time_to_threshold
from repro.analysis.separation_metric import best_certificate
from repro.distributed import DistributedRunner
from repro.experiments.phases import classify_phase
from repro.markov.diagnostics import (
    empirical_distribution,
    empirical_vs_exact_tv,
)
from repro.markov.exact import ExactChainAnalysis


class TestSeparationPipeline:
    def test_high_gamma_run_ends_separated(self):
        system = random_blob_system(80, seed=21)
        chain = SeparationChain(system, lam=4.0, gamma=6.0, seed=21)
        chain.run(400_000)
        assert classify_phase(system) == "compressed-separated"
        cert = best_certificate(system, beta=4.0, delta=0.2)
        assert cert is not None and cert.satisfies(4.0, 0.2)

    def test_gamma_one_run_stays_integrated(self):
        system = random_blob_system(80, seed=22)
        chain = SeparationChain(system, lam=6.0, gamma=1.0, seed=22)
        chain.run(400_000)
        assert classify_phase(system) == "compressed-integrated"

    def test_proven_regimes_match_simulation(self):
        """Where the theorems apply, simulation agrees with prediction."""
        cases = [
            (1.3, 6.0, "separated"),  # Theorems 13+14 region
            (7.0, 1.0, "integrated"),  # Theorems 15+16 region
        ]
        for lam, gamma, expectation in cases:
            regime = predicted_regime(lam, gamma)
            assert regime in ("separates", "integrates")
            system = random_blob_system(80, seed=int(lam * 10))
            SeparationChain(system, lam=lam, gamma=gamma, seed=5).run(400_000)
            phase = classify_phase(system)
            assert expectation in phase, (lam, gamma, regime, phase)


class TestSwapAblation:
    def test_swaps_accelerate_separation(self):
        """Section 3.2: separation occurs without swaps but more slowly.

        Compare the hetero-edge trajectory with and without swaps over
        the same budget from the same start."""
        budget, step = 150_000, 5_000
        results = {}
        for swaps in (True, False):
            system = hexagon_system(60, seed=30)
            chain = SeparationChain(
                system, lam=4.0, gamma=4.0, swaps=swaps, seed=30
            )
            times, values = [], []
            for i in range(budget // step):
                chain.run(step)
                times.append((i + 1) * step)
                values.append(system.hetero_total / system.edge_total)
            results[swaps] = time_to_threshold(
                times, values, threshold=0.2, direction="below", patience=2
            )
        with_swaps, without_swaps = results[True], results[False]
        assert with_swaps is not None
        # Without swaps either never reaches the threshold in budget or
        # takes at least as long.
        assert without_swaps is None or without_swaps >= with_swaps


class TestDistributedEquivalence:
    def test_distributed_runner_matches_exact_stationary(self):
        """E10: the distributed algorithm A converges to the same π as
        the centralized chain M."""
        analysis = ExactChainAnalysis(4, [2, 2], lam=2.0, gamma=3.0)
        state = analysis.states[0].copy()
        runner = DistributedRunner(state, lam=2.0, gamma=3.0, seed=77)
        empirical = empirical_distribution(
            runner,
            state_index=lambda: state.canonical_key(),
            steps=120_000,
            record_every=4,
        )
        exact = {
            s.canonical_key(): float(p)
            for s, p in zip(analysis.states, analysis.pi)
        }
        tv = empirical_vs_exact_tv(empirical, exact)
        assert tv < 0.08, f"TV distance {tv} too large"


class TestCompressionBaseline:
    def test_compression_threshold_behavior(self):
        """Above the proven threshold the homogeneous system compresses;
        at λ = 1 it does not."""
        compressing = CompressionChain.from_line(40, lam=4.0, seed=31)
        compressing.run(150_000)
        assert alpha_of(compressing.system) < 2.0

        free = CompressionChain.from_hexagon(40, lam=1.0, seed=31)
        free.run(150_000)
        assert alpha_of(free.system) > alpha_of(compressing.system)


class TestLongRunStability:
    @pytest.mark.parametrize("gamma", [0.9, 1.0, 4.0])
    def test_half_million_steps_keep_invariants(self, gamma):
        system = random_blob_system(50, seed=40)
        chain = SeparationChain(system, lam=3.0, gamma=gamma, seed=40)
        chain.run(500_000)
        system.validate()
        assert system.is_connected()
        assert not system.has_holes()
