"""Tests for exhaustive configuration enumeration."""

import math

import pytest

from repro.lattice.connectivity import is_connected
from repro.lattice.holes import has_holes
from repro.markov.enumerate_configs import (
    colorings_with_counts,
    count_animals,
    enumerate_animals,
    enumerate_colored_configurations,
    state_space_size,
)

#: OEIS A001334: connected site animals on the triangular lattice.
A001334 = [1, 3, 11, 44, 186, 814, 3652]


class TestAnimalEnumeration:
    def test_counts_match_oeis(self):
        assert [count_animals(n) for n in range(1, 8)] == A001334

    def test_first_holed_animal_at_n6(self):
        """The hexagonal ring is the unique 6-animal with a hole."""
        assert count_animals(6, hole_free_only=True) == 813
        assert count_animals(5, hole_free_only=True) == 186

    def test_animals_are_connected(self):
        for animal in enumerate_animals(5):
            assert is_connected(set(animal))

    def test_hole_free_filter(self):
        for animal in enumerate_animals(6, hole_free_only=True):
            assert not has_holes(set(animal))

    def test_animals_unique(self):
        animals = enumerate_animals(6)
        assert len(animals) == len(set(animals))

    def test_animals_translation_canonical(self):
        """Each animal's minimum node in (y, x) order is the origin."""
        for animal in enumerate_animals(5):
            min_node = min(animal, key=lambda node: (node[1], node[0]))
            assert min_node == (0, 0)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            enumerate_animals(0)


class TestColorings:
    def test_two_color_counts(self):
        colorings = list(colorings_with_counts(4, [2, 2]))
        assert len(colorings) == math.comb(4, 2)
        assert all(sum(c) == 2 for c in colorings)

    def test_single_color(self):
        assert list(colorings_with_counts(3, [3])) == [(0, 0, 0)]

    def test_three_colors(self):
        colorings = list(colorings_with_counts(4, [2, 1, 1]))
        assert len(colorings) == 12  # 4!/(2!1!1!)
        assert all(c.count(2) == 1 for c in colorings)

    def test_wrong_sum_raises(self):
        with pytest.raises(ValueError):
            list(colorings_with_counts(4, [1, 1]))

    def test_four_colors_unsupported(self):
        with pytest.raises(NotImplementedError):
            list(colorings_with_counts(4, [1, 1, 1, 1]))


class TestColoredConfigurations:
    def test_state_space_size(self):
        states = enumerate_colored_configurations(4, [2, 2])
        assert len(states) == 44 * 6
        assert len(states) == state_space_size(4, [2, 2])

    def test_states_are_distinct(self):
        states = enumerate_colored_configurations(4, [2, 2])
        keys = {state.canonical_key() for state in states}
        assert len(keys) == len(states)

    def test_states_valid(self):
        for state in enumerate_colored_configurations(4, [3, 1]):
            assert state.n == 4
            assert state.is_connected()
            state.validate()
