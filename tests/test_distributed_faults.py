"""Tests for crash-stop failure injection."""

import pytest

from repro.distributed.faults import FaultyRunner, degradation_curve
from repro.system.initializers import hexagon_system, random_blob_system
from repro.system.observables import color_counts


class TestConstruction:
    def test_validates_parameters(self):
        system = hexagon_system(10, seed=0)
        with pytest.raises(ValueError):
            FaultyRunner(system, lam=0, gamma=1)
        with pytest.raises(ValueError):
            FaultyRunner(system, lam=1, gamma=1, crash_fraction=1.0)

    def test_crash_fraction_count(self):
        system = hexagon_system(40, seed=0)
        runner = FaultyRunner(system, 4, 4, crash_fraction=0.25, seed=1)
        assert runner.crashed_count == 10
        assert runner.live_fraction() == 0.75

    def test_explicit_crash_nodes(self):
        system = hexagon_system(10, seed=0)
        nodes = sorted(system.colors)[:3]
        runner = FaultyRunner(system, 4, 4, crashed_nodes=nodes, seed=1)
        assert runner.crashed_count == 3

    def test_crash_unoccupied_node_rejected(self):
        system = hexagon_system(5, seed=0)
        runner = FaultyRunner(system, 4, 4, seed=1)
        with pytest.raises(ValueError):
            runner.crash_nodes([(99, 99)])


class TestFaultyDynamics:
    def test_crashed_particles_never_move(self):
        system = hexagon_system(30, seed=2)
        nodes = sorted(system.colors)[:6]
        frozen_colors = {node: system.colors[node] for node in nodes}
        runner = FaultyRunner(system, 4, 4, crashed_nodes=nodes, seed=2)
        runner.run(30_000)
        for node, color in frozen_colors.items():
            assert system.colors.get(node) == color, node

    def test_invariants_preserved(self):
        system = random_blob_system(30, seed=3)
        runner = FaultyRunner(system, 4, 4, crash_fraction=0.2, seed=3)
        runner.run(30_000)
        system.validate()
        assert system.is_connected()
        assert not system.has_holes()
        assert color_counts(system) == color_counts(
            random_blob_system(30, seed=3)
        )

    def test_zero_crash_behaves_like_plain_chain(self):
        """With nothing crashed, separation proceeds normally."""
        system = hexagon_system(40, seed=4)
        before = system.hetero_total
        FaultyRunner(system, 4, 4, crash_fraction=0.0, seed=4).run(80_000)
        assert system.hetero_total < 0.6 * before

    def test_crashed_activations_counted(self):
        system = hexagon_system(20, seed=5)
        runner = FaultyRunner(system, 4, 4, crash_fraction=0.5, seed=5)
        runner.run(10_000)
        # Half the particles are crashed: roughly half the activations
        # are wasted.
        assert 0.35 < runner.crashed_activations / runner.iterations < 0.65


class TestDegradation:
    def test_quality_degrades_with_crash_fraction(self):
        rows = degradation_curve(
            n=60,
            crash_fractions=(0.0, 0.4),
            iterations=150_000,
            seed=7,
        )
        healthy, crippled = rows
        assert healthy["demixing_index"] > crippled["demixing_index"]
        assert healthy["hetero_density"] < crippled["hetero_density"]

    def test_rows_structure(self):
        rows = degradation_curve(
            n=20, crash_fractions=(0.0, 0.1), iterations=5_000, seed=1
        )
        assert [row["crash_fraction"] for row in rows] == [0.0, 0.1]
        assert rows[1]["crashed"] == 2
