"""Adaptive execution: stop conditions, warm starts, checkpoint interop.

The adaptive mode (``docs/adaptive.md``) has three contracts this file
pins down:

* **Prefix bit-identity** — on the scalar kernels an adaptive run is a
  bit-exact prefix of the fixed-budget trajectory on the same RNG
  stream, so fixed-budget results are untouched by the feature and an
  adaptive run capped at ``k`` steps equals ``chain.run(k)``.
* **Checkpoint interop** — stop metadata rides checkpoint headers
  outside task identity: adaptive and fixed runs of the same task share
  one checkpoint, resume in either direction reuses it, and legacy
  (pre-adaptive) checkpoints decode with default (``None``) metadata.
* **Statistical equivalence** — an adaptively stopped ensemble samples
  the same stationary observables as a fixed-budget ensemble at both a
  separated and an integrated (λ, γ) point (moments + KS bands, same
  tolerances as ``tests/test_batch_statistical.py``).

Warm-start provenance is covered at the task level (the parent's final
configuration is baked into ``system_json``, so a stale parent changes
the child's key and invalidates its checkpoint) and at the ladder level
(anti-diagonal waves, recorded parents).
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.analysis.compression_metric import alpha_of
from repro.core.separation_chain import SeparationChain
from repro.experiments.costmodel import CostModel, plan_ladder
from repro.experiments.parallel import (
    CellTask,
    checkpoint_path,
    dispatch_cells,
    execute_cells,
    run_cell,
    task_payload,
)
from repro.obs.convergence import (
    STOP_BUDGET,
    STOP_CONVERGED,
    STOP_MAX_ITERATIONS,
    ChainDiagnostics,
    DiagnosticsConfig,
    StopCondition,
)
from repro.system.initializers import random_blob_system
from repro.system.observables import largest_cluster_fraction
from repro.util.codec import STOP_METADATA_DEFAULTS, stop_metadata
from repro.util.serialization import configuration_to_json


def make_task(n=16, seed=3, steps=400, checkpoints=(), **overrides):
    system = random_blob_system(n, seed=seed)
    fields = dict(
        lam=4.0,
        gamma=4.0,
        replica=0,
        seed=seed,
        steps=steps,
        system_json=configuration_to_json(system, sort_nodes=False),
        checkpoints=tuple(checkpoints),
    )
    fields.update(overrides)
    return CellTask(**fields)


def _fingerprint(chain):
    return (
        list(chain.system.colors.items()),
        chain.system.edge_total,
        chain.system.hetero_total,
        chain.accepted_moves,
        chain.accepted_swaps,
        chain.iterations,
    )


def _make_chain(backend, seed=5, n=48):
    return SeparationChain(
        random_blob_system(n, seed=2018),
        lam=4.0,
        gamma=4.0,
        seed=seed,
        backend=backend,
    )


#: A target no finite chain reaches: forces the budget/cap branch.
UNREACHABLE = StopCondition(ess_target=1e18)


class TestStopCondition:
    def test_payload_round_trip(self):
        stop = StopCondition(
            ess_target=50.0,
            rhat_max=1.2,
            geweke_max=3.0,
            min_iterations=1000,
            max_iterations=9000,
        )
        assert StopCondition.from_payload(stop.to_payload()) == stop
        # Sparse payloads (e.g. hand-written configs) fill defaults.
        assert StopCondition.from_payload({}) == StopCondition()

    def test_validation(self):
        with pytest.raises(ValueError):
            StopCondition(ess_target=0.0)
        with pytest.raises(ValueError):
            StopCondition(rhat_max=0.9)
        with pytest.raises(ValueError):
            StopCondition(geweke_max=0.0)
        with pytest.raises(ValueError):
            StopCondition(min_iterations=-1)
        with pytest.raises(ValueError):
            StopCondition(min_iterations=500, max_iterations=100)
        StopCondition(min_iterations=500, max_iterations=0)  # 0 = no cap

    def test_satisfied_gates(self):
        stop = StopCondition(ess_target=100.0, min_iterations=1000)
        good = {"ess": 150.0, "geweke": 0.5, "rhat": 1.01, "stalled": False}
        assert stop.satisfied(good, 2000) == STOP_CONVERGED
        # Every gate blocks independently.
        assert stop.satisfied(good, 999) is None  # burn-in floor
        assert stop.satisfied({**good, "stalled": True}, 2000) is None
        assert stop.satisfied({**good, "ess": 50.0}, 2000) is None
        assert stop.satisfied({**good, "ess": None}, 2000) is None
        assert stop.satisfied({**good, "geweke": 5.0}, 2000) is None
        assert stop.satisfied({**good, "rhat": 1.5}, 2000) is None
        # Missing geweke/rhat (scalar chains, short histories) do not
        # block: the ESS target is the primary criterion.
        assert stop.satisfied({"ess": 150.0}, 2000) == STOP_CONVERGED

    def test_cap(self):
        assert StopCondition().cap(10_000) == 10_000
        assert StopCondition(max_iterations=4000).cap(10_000) == 4000
        assert StopCondition(max_iterations=40_000).cap(10_000) == 10_000


class TestRunUntil:
    def test_requires_diagnostics(self):
        chain = _make_chain("dict")
        with pytest.raises(RuntimeError, match="diagnostics"):
            chain.run_until(1000, StopCondition())

    @pytest.mark.parametrize("backend", ["dict", "grid"])
    def test_exhausted_budget_is_bit_identical_to_fixed(self, backend):
        """With an unreachable target, adaptive == fixed, bit for bit."""
        plain = _make_chain(backend)
        adaptive = _make_chain(backend)
        adaptive.instrument(
            diagnostics=ChainDiagnostics(DiagnosticsConfig(stride=500))
        )
        plain.run(20_000)
        reason = adaptive.run_until(20_000, UNREACHABLE)
        assert reason == STOP_BUDGET
        assert _fingerprint(plain) == _fingerprint(adaptive)
        assert plain.rng.getstate() == adaptive.rng.getstate()

    @pytest.mark.parametrize("backend", ["dict", "grid"])
    def test_max_iterations_cap_is_a_prefix(self, backend):
        """Capped adaptive run == fixed run of exactly cap steps."""
        plain = _make_chain(backend)
        adaptive = _make_chain(backend)
        adaptive.instrument(
            diagnostics=ChainDiagnostics(DiagnosticsConfig(stride=500))
        )
        stop = dataclasses.replace(UNREACHABLE, max_iterations=12_000)
        plain.run(12_000)
        reason = adaptive.run_until(20_000, stop)
        assert reason == STOP_MAX_ITERATIONS
        assert adaptive.iterations == 12_000
        assert _fingerprint(plain) == _fingerprint(adaptive)
        assert plain.rng.getstate() == adaptive.rng.getstate()

    def test_converged_stop_respects_burn_in_floor(self):
        chain = _make_chain("grid")
        chain.instrument(
            diagnostics=ChainDiagnostics(
                DiagnosticsConfig(stride=250, verdict_every=2)
            )
        )
        stop = StopCondition(
            ess_target=5.0, geweke_max=50.0, min_iterations=4000
        )
        reason = chain.run_until(200_000, stop)
        assert reason == STOP_CONVERGED
        assert 4000 <= chain.iterations < 200_000

    def test_converged_prefix_matches_fixed_trajectory(self):
        """The adaptive stop point lies ON the fixed trajectory.

        Two checks: the stopped state equals ``run(k)`` of a fresh chain
        (same consumed draws — the RNG *prefetch* differs because the
        adaptive run plans for the full budget, so only system state is
        compared), and continuing the stopped chain to the full budget
        rejoins the fixed full-budget run bit-for-bit, RNG included.
        """
        adaptive = _make_chain("grid")
        adaptive.instrument(
            diagnostics=ChainDiagnostics(DiagnosticsConfig(stride=250))
        )
        stop = StopCondition(ess_target=5.0, geweke_max=50.0)
        budget = 200_000
        reason = adaptive.run_until(budget, stop)
        assert reason == STOP_CONVERGED
        stopped_at = adaptive.iterations
        prefix = _make_chain("grid")
        prefix.run(stopped_at)
        assert _fingerprint(prefix) == _fingerprint(adaptive)
        full = _make_chain("grid")
        full.run(budget)
        adaptive.run(budget - stopped_at)
        assert _fingerprint(full) == _fingerprint(adaptive)
        assert full.rng.getstate() == adaptive.rng.getstate()

    def test_absolute_cap_on_resumed_chain(self):
        """min/max_iterations count absolute chain iterations."""
        chain = _make_chain("dict")
        chain.instrument(
            diagnostics=ChainDiagnostics(DiagnosticsConfig(stride=500))
        )
        chain.run(5_000)
        stop = dataclasses.replace(UNREACHABLE, max_iterations=8_000)
        assert chain.run_until(20_000, stop) == STOP_MAX_ITERATIONS
        assert chain.iterations == 8_000
        # A chain already past the cap executes nothing further.
        assert chain.run_until(20_000, stop) == STOP_MAX_ITERATIONS
        assert chain.iterations == 8_000

    def test_batch_backend_stops(self):
        chain = _make_chain("batch")
        chain.instrument(
            diagnostics=ChainDiagnostics(
                DiagnosticsConfig(stride=250, verdict_every=2)
            )
        )
        stop = StopCondition(ess_target=5.0, geweke_max=50.0)
        reason = chain.run_until(200_000, stop)
        assert reason == STOP_CONVERGED
        assert chain.iterations < 200_000


class TestAdaptiveEngine:
    def test_fixed_mode_has_no_stop_metadata(self):
        (result,) = execute_cells([make_task(steps=1200)])
        assert result.stop_reason is None
        assert result.budget_steps is None
        assert result.ess_at_stop is None
        assert result.warm_parent is None
        assert result.iterations == 1200

    def test_adaptive_results_carry_stop_metadata(self):
        task = make_task(n=32, steps=300_000)
        stop = StopCondition(
            ess_target=5.0, geweke_max=50.0, min_iterations=2000
        )
        (result,) = execute_cells([task], adaptive=stop)
        assert result.stop_reason == STOP_CONVERGED
        assert result.budget_steps == task.steps
        assert 2000 <= result.iterations < task.steps
        assert result.ess_at_stop is not None
        assert result.ess_at_stop >= 5.0

    def test_adaptive_cap_reported(self):
        task = make_task(steps=50_000)
        stop = dataclasses.replace(UNREACHABLE, max_iterations=6000)
        (result,) = execute_cells([task], adaptive=stop)
        assert result.stop_reason == STOP_MAX_ITERATIONS
        assert result.iterations == 6000

    @pytest.mark.parametrize("direction", ["adaptive_first", "fixed_first"])
    def test_checkpoint_interop_both_directions(self, tmp_path, direction):
        """Fixed and adaptive runs of one task share one checkpoint."""
        task = make_task(n=32, steps=300_000)
        stop = StopCondition(
            ess_target=5.0, geweke_max=50.0, min_iterations=2000
        )
        first = dict(adaptive=stop) if direction == "adaptive_first" else {}
        second = {} if direction == "adaptive_first" else dict(adaptive=stop)
        (written,) = execute_cells([task], checkpoint_dir=tmp_path, **first)
        assert checkpoint_path(tmp_path, task).exists()
        (resumed,) = execute_cells(
            [task], checkpoint_dir=tmp_path, resume=True, **second
        )
        # The second run reused the first run's checkpoint verbatim —
        # including (or lacking) its stop metadata.
        assert resumed.from_checkpoint
        assert resumed.iterations == written.iterations
        assert resumed.stop_reason == written.stop_reason
        assert resumed.ess_at_stop == written.ess_at_stop
        assert resumed.budget_steps == written.budget_steps
        assert resumed.system.colors == written.system.colors

    def test_legacy_payload_decodes_default_stop_metadata(self):
        """Pre-adaptive checkpoints carry no stop keys; defaults apply."""
        payload = run_cell(task_payload(make_task(steps=800)))
        for key in STOP_METADATA_DEFAULTS:
            assert key not in payload
        assert stop_metadata(payload) == dict(STOP_METADATA_DEFAULTS)

    def test_validated_result_accepts_short_adaptive_runs(self):
        task = make_task(steps=50_000)
        stop = StopCondition(ess_target=5.0, geweke_max=50.0)
        payload = run_cell(task_payload(task, adaptive=stop.to_payload()))
        assert payload["iterations"] < task.steps
        # execute_cells would route this through _validated_result; the
        # public path must accept the shortened run.
        (result,) = execute_cells([task], adaptive=stop)
        assert result.iterations < task.steps


class TestWarmStart:
    def test_plan_ladder_is_anti_diagonal(self):
        lambdas = (1.0, 2.0, 4.0)
        gammas = (0.5, 2.0, 6.0)
        tasks = [
            make_task(lam=lam, gamma=gamma, replica=r)
            for lam in lambdas
            for gamma in gammas
            for r in range(2)
        ]
        waves = plan_ladder(tasks)
        lam_rank = {v: i for i, v in enumerate(lambdas)}
        gamma_rank = {v: i for i, v in enumerate(gammas)}
        seen = []
        for depth, wave in enumerate(waves):
            for index in wave:
                task = tasks[index]
                assert lam_rank[task.lam] + gamma_rank[task.gamma] == depth
            seen.extend(wave)
        assert sorted(seen) == list(range(len(tasks)))

    def test_warm_parent_excluded_from_key(self):
        base = make_task()
        warmed = dataclasses.replace(base, warm_parent="cafebabe")
        assert base.key() == warmed.key()

    def test_stale_parent_config_changes_key(self):
        """Warm-start identity lives in the warmed system_json digest."""
        parent_a = configuration_to_json(
            random_blob_system(16, seed=11), sort_nodes=False
        )
        parent_b = configuration_to_json(
            random_blob_system(16, seed=12), sort_nodes=False
        )
        child_a = make_task(system_json=parent_a, warm_parent="p")
        child_b = make_task(system_json=parent_b, warm_parent="p")
        assert child_a.key() != child_b.key()

    def test_task_payload_carries_provenance(self):
        task = dataclasses.replace(make_task(), warm_parent="deadbeef")
        payload = task_payload(task)
        assert payload["warm_parent"] == "deadbeef"
        assert payload["warm_digest"]
        assert "warm_parent" not in task_payload(make_task())

    def test_ladder_dispatch_records_parents(self):
        lambdas = (4.0, 6.0)
        gammas = (4.0, 6.0)
        tasks = [
            make_task(lam=lam, gamma=gamma, steps=1500)
            for lam in lambdas
            for gamma in gammas
        ]
        results = dispatch_cells(tasks, warm_start="ladder")
        by_cell = {(r.task.lam, r.task.gamma): r for r in results}
        # Results come back in task order.
        assert [(r.task.lam, r.task.gamma) for r in results] == [
            (lam, gamma) for lam in lambdas for gamma in gammas
        ]
        # The ladder root starts cold; every other cell records the
        # neighbor whose equilibrated configuration seeded it.
        assert by_cell[(4.0, 4.0)].warm_parent is None
        for cell in [(4.0, 6.0), (6.0, 4.0), (6.0, 6.0)]:
            assert by_cell[cell].warm_parent
            assert by_cell[cell].warm_digest

    def test_ladder_matches_warm_seeded_cold_runs(self):
        """A warmed cell == a cold cell started from the parent's end."""
        tasks = [
            make_task(lam=4.0, gamma=gamma, steps=1500)
            for gamma in (4.0, 6.0)
        ]
        parent, child = dispatch_cells(tasks, warm_start="ladder")
        rerun_task = dataclasses.replace(
            tasks[1],
            system_json=configuration_to_json(
                parent.system, sort_nodes=False
            ),
        )
        (rerun,) = execute_cells([rerun_task])
        assert rerun.system.colors == child.system.colors
        assert rerun.iterations == child.iterations

    def test_warm_start_validation(self):
        with pytest.raises(ValueError, match="warm_start"):
            dispatch_cells([make_task(steps=100)], warm_start="sideways")


class TestCostModelActualUnits:
    def test_units_substitute_executed_steps(self):
        model = CostModel()
        task = make_task(steps=10_000)
        assert model.units(task, iterations=2500) == pytest.approx(
            model.units(dataclasses.replace(task, steps=2500))
        )

    def test_observe_trains_on_executed_units(self):
        """Same wall time, fewer executed steps => higher learned rate."""
        budgeted = CostModel()
        actual = CostModel()
        task = make_task(steps=10_000)
        budgeted.observe(task, 2.0)
        actual.observe(task, 2.0, iterations=2500)
        assert actual.rate(task) == pytest.approx(4.0 * budgeted.rate(task))
        # Predictions still plan for the full budget (upper bound).
        assert actual.predict_seconds(task) == pytest.approx(
            actual.rate(task) * actual.units(task)
        )


# ---------------------------------------------------------------------------
# Statistical equivalence: adaptively stopped ensembles sample the same
# observables as fixed-budget ensembles (same bands as the batch-kernel
# statistical suite).

N = 48
REPLICAS = 16
BUDGET = 30_000
FIXED_STEPS = 30_000
SEED_BASE = 7100

OBS_NAMES = ("perimeter", "het_edges", "alpha", "largest_cluster_fraction")


def _observe(system):
    return (
        float(system.perimeter()),
        float(system.hetero_total),
        float(alpha_of(system)),
        float(largest_cluster_fraction(system)),
    )


def _ks_distance(a, b):
    a = np.sort(a)
    b = np.sort(b)
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


@pytest.mark.parametrize(
    "lam,gamma,regime",
    [(4.0, 4.0, "separated"), (4.0, 0.5, "integrated")],
    ids=["separated", "integrated"],
)
class TestAdaptiveStatistical:
    _cache = {}

    #: Stop rule for the equivalence ensembles: a modest ESS target with
    #: a burn-in floor deep enough that stopped chains are already
    #: sampling the stationary observables the fixed ensemble reports.
    STOP = StopCondition(
        ess_target=10.0, geweke_max=50.0, min_iterations=15_000
    )

    @classmethod
    def _ensembles(cls, lam, gamma):
        key = (lam, gamma)
        if key not in cls._cache:
            fixed_rows = []
            adaptive_rows = []
            stopped_at = []
            for replica in range(REPLICAS):
                system = random_blob_system(N, seed=2018)
                chain = SeparationChain(
                    system,
                    lam=lam,
                    gamma=gamma,
                    seed=SEED_BASE + replica,
                    backend="grid",
                )
                chain.run(FIXED_STEPS)
                fixed_rows.append(_observe(system))
                system = random_blob_system(N, seed=2018)
                chain = SeparationChain(
                    system,
                    lam=lam,
                    gamma=gamma,
                    seed=SEED_BASE + 1000 + replica,
                    backend="grid",
                )
                chain.instrument(
                    diagnostics=ChainDiagnostics(
                        DiagnosticsConfig(stride=500)
                    )
                )
                chain.run_until(BUDGET, cls.STOP)
                adaptive_rows.append(_observe(system))
                stopped_at.append(chain.iterations)
            cls._cache[key] = (
                np.asarray(fixed_rows),
                np.asarray(adaptive_rows),
                stopped_at,
            )
        return cls._cache[key]

    def test_some_chains_stop_early(self, lam, gamma, regime):
        _, _, stopped_at = self._ensembles(lam, gamma)
        assert all(
            self.STOP.min_iterations <= t <= BUDGET for t in stopped_at
        )
        assert any(t < BUDGET for t in stopped_at), (
            "no chain converged before the budget; the stop rule is "
            "never exercised by this ensemble"
        )

    def test_moments_match(self, lam, gamma, regime):
        fixed, adaptive, _ = self._ensembles(lam, gamma)
        for col, name in enumerate(OBS_NAMES):
            f = fixed[:, col]
            a = adaptive[:, col]
            md = abs(float(f.mean() - a.mean()))
            pooled_se = math.sqrt(
                f.var(ddof=1) / f.size + a.var(ddof=1) / a.size
            )
            band = 3.0 * pooled_se + 0.05 * max(abs(float(f.mean())), 1.0)
            assert md <= band, (
                f"{regime}: adaptive vs fixed mean of {name} differs by "
                f"{md:.3f} (band {band:.3f})"
            )

    def test_distributions_match(self, lam, gamma, regime):
        fixed, adaptive, _ = self._ensembles(lam, gamma)
        crit = 1.95 * math.sqrt(
            (fixed.shape[0] + adaptive.shape[0])
            / (fixed.shape[0] * adaptive.shape[0])
        )
        for col, name in enumerate(OBS_NAMES):
            distance = _ks_distance(fixed[:, col], adaptive[:, col])
            assert distance <= crit, (
                f"{regime}: KS distance {distance:.3f} of {name} exceeds "
                f"{crit:.3f}"
            )

    def test_regime_signature(self, lam, gamma, regime):
        """Sanity: the two points genuinely span both phases."""
        fixed, adaptive, _ = self._ensembles(lam, gamma)
        lcf = float(adaptive[:, 3].mean())
        if regime == "separated":
            assert lcf > 0.35
        else:
            assert lcf < 0.35
        assert float(fixed[:, 3].mean()) == pytest.approx(lcf, abs=0.25)
