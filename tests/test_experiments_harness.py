"""Tests for the experiment harness: phases, recorder, render, sweeps."""

import pytest

from repro.core.separation_chain import SeparationChain
from repro.experiments.phases import (
    PhaseThresholds,
    classify_phase,
    is_compressed_phase,
    is_separated_phase,
    phase_metrics,
)
from repro.experiments.recorder import RunRecorder, record_during_run
from repro.experiments.render import render_ascii, render_svg
from repro.experiments.sweep import grid, run_sweep
from repro.system.initializers import (
    checkerboard_system,
    hexagon_system,
    line_system,
    separated_system,
)


class TestPhaseClassifier:
    def test_compact_separated(self):
        system = separated_system(64)
        assert classify_phase(system) == "compressed-separated"

    def test_compact_integrated(self):
        system = checkerboard_system(64)
        assert classify_phase(system) == "compressed-integrated"

    def test_expanded_integrated(self):
        system = line_system(64, seed=0)
        assert classify_phase(system) == "expanded-integrated"

    def test_expanded_separated(self):
        # A sorted line: maximum perimeter but perfectly color-sorted.
        from repro.system.configuration import ParticleSystem

        nodes = [(i, 0) for i in range(64)]
        colors = [0] * 32 + [1] * 32
        system = ParticleSystem.from_nodes(nodes, colors)
        assert classify_phase(system) == "expanded-separated"

    def test_thresholds_respected(self):
        system = separated_system(64)
        strict = PhaseThresholds(alpha_max=1.0)
        assert not is_compressed_phase(system, strict)

    def test_separated_requires_low_hetero_density(self):
        system = checkerboard_system(64)
        lenient = PhaseThresholds(beta_max=100.0, delta=0.49)
        assert not is_separated_phase(system, lenient)

    def test_phase_metrics_keys(self):
        metrics = phase_metrics(separated_system(25))
        assert {
            "alpha",
            "perimeter",
            "hetero_edges",
            "hetero_density",
            "best_beta",
            "best_impurity",
        } <= set(metrics)


class TestRecorder:
    def test_record_rows(self):
        system = hexagon_system(10, seed=0)
        recorder = RunRecorder({"perimeter": lambda s: s.perimeter()})
        recorder.record(0, system)
        recorder.record(10, system)
        assert len(recorder.rows) == 2
        assert recorder.series("perimeter")[0] == system.perimeter()
        assert recorder.last()["iteration"] == 10.0

    def test_series_unknown_name(self):
        recorder = RunRecorder({"x": lambda s: 0.0})
        recorder.record(0, hexagon_system(5, seed=0))
        with pytest.raises(KeyError):
            recorder.series("bogus")

    def test_last_empty_raises(self):
        with pytest.raises(IndexError):
            RunRecorder({}).last()

    def test_as_table_formats(self):
        system = hexagon_system(10, seed=0)
        recorder = RunRecorder({"perimeter": lambda s: s.perimeter()})
        recorder.record(0, system)
        table = recorder.as_table()
        assert "perimeter" in table and "iteration" in table

    def test_record_during_run(self):
        system = hexagon_system(15, seed=1)
        chain = SeparationChain(system, lam=3, gamma=3, seed=1)
        recorder = RunRecorder({"hetero": lambda s: s.hetero_total})
        record_during_run(chain, system, recorder, checkpoints=[0, 100, 500])
        assert [row["iteration"] for row in recorder.rows] == [0.0, 100.0, 500.0]
        assert chain.iterations == 500

    def test_record_during_run_validates_order(self):
        system = hexagon_system(10, seed=1)
        chain = SeparationChain(system, lam=3, gamma=3, seed=1)
        recorder = RunRecorder({})
        with pytest.raises(ValueError):
            record_during_run(chain, system, recorder, checkpoints=[100, 50])


class TestRender:
    def test_ascii_contains_both_glyphs(self):
        text = render_ascii(hexagon_system(20, seed=0))
        assert "o" in text and "x" in text

    def test_ascii_row_count(self):
        system = hexagon_system(19, seed=0)  # radius-2 hexagon: 5 rows
        assert len(render_ascii(system).splitlines()) == 5

    def test_svg_well_formed(self, tmp_path):
        system = hexagon_system(12, seed=0)
        path = tmp_path / "config.svg"
        text = render_svg(system, path)
        assert text.startswith("<svg")
        assert text.endswith("</svg>")
        assert text.count("<circle") == 12
        assert path.read_text() == text


class TestSweep:
    def test_grid_product(self):
        cells = grid([1.0, 2.0], [3.0, 4.0, 5.0])
        assert len(cells) == 6

    def test_run_sweep_metrics(self):
        points = run_sweep(
            grid([4.0], [4.0]),
            metrics={"hetero": lambda s: s.hetero_total},
            n=20,
            iterations=2000,
            seed=3,
        )
        assert len(points) == 1
        assert "hetero" in points[0].metrics
        assert points[0].metrics["_replicas"] == 1.0

    def test_run_sweep_replicas_average(self):
        points = run_sweep(
            grid([4.0], [4.0]),
            metrics={"hetero": lambda s: s.hetero_total},
            n=20,
            iterations=500,
            seed=3,
            replicas=3,
        )
        assert points[0].metrics["_replicas"] == 3.0

    def test_run_sweep_validates_replicas(self):
        with pytest.raises(ValueError):
            run_sweep([], metrics={}, replicas=0)
