"""Tests for Properties 4 and 5 (move validity)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.moves import (
    COMMON_RING_INDICES,
    _circular_runs,
    move_allowed,
    move_allowed_between,
    move_allowed_reference,
    property_4_reference,
    property_5_reference,
    ring_occupancy,
    satisfies_property_4,
    satisfies_property_5,
)
from repro.lattice.triangular import NEIGHBOR_OFFSETS, edge_ring


def _ring_world(mask):
    """Build an occupied-set world from a ring occupancy bitmask.

    The moving particle sits at (0,0); the move target is (1,0); ring
    positions come from edge_ring.
    """
    src, dst = (0, 0), (1, 0)
    ring = edge_ring(src, dst)
    occupied = {src}
    occ = []
    for i, node in enumerate(ring):
        bit = bool(mask & (1 << i))
        occ.append(bit)
        if bit:
            occupied.add(node)
    return occupied, occ, src, dst


class TestCircularRuns:
    def test_empty(self):
        assert _circular_runs([False] * 8) == []

    def test_full(self):
        assert _circular_runs([True] * 8) == [list(range(8))]

    def test_wrapping_run(self):
        occ = [True, False, False, False, False, False, True, True]
        runs = _circular_runs(occ)
        assert len(runs) == 1
        assert sorted(runs[0]) == [0, 6, 7]

    def test_two_runs(self):
        occ = [True, True, False, True, False, False, False, False]
        runs = _circular_runs(occ)
        assert sorted(sorted(r) for r in runs) == [[0, 1], [3]]


class TestPropertiesAgainstReference:
    """The fast ring implementation must agree with the verbatim
    definition on every one of the 256 neighborhoods."""

    def test_property_4_all_masks(self):
        for mask in range(256):
            occupied, occ, src, dst = _ring_world(mask)
            assert satisfies_property_4(occ) == property_4_reference(
                occupied, src, dst
            ), f"mask={mask:08b}"

    def test_property_5_all_masks(self):
        for mask in range(256):
            occupied, occ, src, dst = _ring_world(mask)
            assert satisfies_property_5(occ) == property_5_reference(
                occupied, src, dst
            ), f"mask={mask:08b}"

    def test_move_allowed_all_masks(self):
        for mask in range(256):
            occupied, occ, src, dst = _ring_world(mask)
            assert move_allowed(occ) == move_allowed_reference(
                occupied, src, dst
            ), f"mask={mask:08b}"

    @given(
        st.integers(min_value=0, max_value=255),
        st.tuples(st.integers(-10, 10), st.integers(-10, 10)),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_all_directions_and_translations(self, mask, src, d):
        """Fast and reference checks agree for arbitrary edge orientation."""
        dx, dy = NEIGHBOR_OFFSETS[d]
        dst = (src[0] + dx, src[1] + dy)
        ring = edge_ring(src, dst)
        occupied = {src}
        for i, node in enumerate(ring):
            if mask & (1 << i):
                occupied.add(node)
        colors = {node: 0 for node in occupied}
        assert move_allowed_between(colors, src, dst) == move_allowed_reference(
            occupied, src, dst
        )


class TestSpecificNeighborhoods:
    def test_isolated_pair_not_allowed(self):
        """A lone particle moving with no other particles: both properties
        fail (|S|=0 but both sides empty) — moving would be fine
        physically but the n=1 system never reaches this code path."""
        occupied, occ, src, dst = _ring_world(0)
        assert not move_allowed(occ)

    def test_single_common_neighbor_allowed(self):
        occupied, occ, src, dst = _ring_world(1 << 0)
        assert satisfies_property_4(occ)

    def test_both_commons_separate_components_not_allowed(self):
        """Two occupied commons with nothing between: each forms its own
        component containing one common — allowed by Property 4."""
        mask = (1 << 0) | (1 << 4)
        occupied, occ, src, dst = _ring_world(mask)
        assert satisfies_property_4(occ)

    def test_run_containing_both_commons_rejected(self):
        """One connected arc through both commons: particles connect to
        two members of S, violating Property 4 (would close a cycle and
        could form a hole)."""
        mask = 0b00011111  # positions 0..4: an arc from common 0 to common 4
        occupied, occ, src, dst = _ring_world(mask)
        assert not satisfies_property_4(occ)

    def test_component_without_common_rejected(self):
        mask = (1 << 0) | (1 << 2)  # common 0, plus isolated position 2
        occupied, occ, src, dst = _ring_world(mask)
        assert not satisfies_property_4(occ)

    def test_property5_basic(self):
        mask = (1 << 2) | (1 << 6)  # one neighbor on each exclusive side
        occupied, occ, src, dst = _ring_world(mask)
        assert satisfies_property_5(occ)

    def test_property5_disconnected_side_rejected(self):
        mask = (1 << 5) | (1 << 7) | (1 << 2)  # src side split 1,0,1
        occupied, occ, src, dst = _ring_world(mask)
        assert not satisfies_property_5(occ)

    def test_property5_empty_side_rejected(self):
        mask = 1 << 6  # only the src side occupied
        occupied, occ, src, dst = _ring_world(mask)
        assert not satisfies_property_5(occ)

    def test_commons_indices_constant(self):
        assert COMMON_RING_INDICES == (0, 4)

    def test_ring_occupancy_helper(self):
        colors = {(0, 0): 0, (0, 1): 1}
        occ = ring_occupancy(colors, (0, 0), (1, 0))
        assert occ[0] is True  # (0,1) is the ccw common neighbor
        assert sum(occ) == 1
